//! Results of one simulated server run.

use apc_power::units::Watts;
use apc_sim::{SimDuration, SimTime};
use apc_soc::cstate::{CoreCState, PackageCState};
use apc_telemetry::latency::LatencySummary;
use apc_telemetry::sketch::QuantileSketch;
use apc_telemetry::timeseries::TimeSeries;
use apc_trace::{ProfileReport, TraceLog};

/// Everything a run produces; the analysis crate and the benches reduce this
/// into the paper's tables and figures.
///
/// `PartialEq` compares every recorded metric exactly (no float tolerance):
/// two results compare equal only when the underlying simulations were
/// bit-identical, which is what the parallel-vs-sequential fleet tests
/// assert.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Platform configuration name (`Cshallow`, `Cdeep`, `CPC1A`).
    pub config_name: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Offered request rate (requests per second).
    pub offered_rate: f64,
    /// Measured duration.
    pub duration: SimDuration,
    /// Requests completed (client-visible only).
    pub completed_requests: u64,
    /// End-to-end latency summary (client-visible requests), derived from
    /// [`RunResult::latency_sketch`].
    pub latency: LatencySummary,
    /// The bounded-memory quantile sketch behind [`RunResult::latency`]:
    /// full latency distribution state, mergeable across runs (fleet /
    /// cluster / chain aggregation) and serializable (sweep-shard
    /// checkpoints). See [`apc_telemetry::sketch`] for the error contract.
    pub latency_sketch: QuantileSketch,
    /// Average SoC (package) power over the run.
    pub avg_soc_power: Watts,
    /// Average DRAM power over the run.
    pub avg_dram_power: Watts,
    /// Measured processor utilisation (busy core-time / total core-time).
    pub cpu_utilization: f64,
    /// Average per-core fraction of time in CC0.
    pub cc0_fraction: f64,
    /// Average per-core fraction of time in CC1 (or deeper shallow states).
    pub cc1_fraction: f64,
    /// Average per-core fraction of time in CC6.
    pub cc6_fraction: f64,
    /// Fraction of time every core was simultaneously idle (the PC1A
    /// opportunity under the baselines, the actual residency target under
    /// `CPC1A`).
    pub all_idle_fraction: f64,
    /// Fraction of time actually resident in PC1A.
    pub pc1a_residency: f64,
    /// Fraction of time actually resident in PC6.
    pub pc6_residency: f64,
    /// Number of completed PC1A entries.
    pub pc1a_transitions: u64,
    /// Number of PC1A entries aborted by racing wakeups.
    pub pc1a_aborted: u64,
    /// Number of PC6 entries.
    pub pc6_transitions: u64,
    /// Number of fully-idle periods observed (SoCWatch floor applied).
    pub idle_periods: u64,
    /// Fraction of fully-idle periods between 20 µs and 200 µs (Fig. 6(c)).
    pub idle_periods_20_200us: f64,
    /// Time-series telemetry (power, residency deltas, queue depth over
    /// simulated time), recorded when the configuration sets
    /// [`crate::config::ServerConfig::timeseries_interval`].
    pub timeseries: Option<TimeSeries>,
    /// Span log of head-sampled requests, recorded when the configuration
    /// sets [`crate::config::ServerConfig::trace`]. Purely observational:
    /// every other field is bit-identical with tracing on or off.
    pub trace: Option<TraceLog>,
    /// Engine self-profile (event-core counters), recorded when the
    /// configuration sets [`crate::config::ServerConfig::profile`]. Also
    /// zero-perturbation.
    pub profile: Option<ProfileReport>,
    /// Events the simulation dispatched to reach the horizon.
    pub events_dispatched: u64,
    /// End of the simulated timeline.
    pub finished_at: SimTime,
}

impl RunResult {
    /// Average SoC + DRAM power.
    #[must_use]
    pub fn avg_total_power(&self) -> Watts {
        self.avg_soc_power + self.avg_dram_power
    }

    /// Achieved throughput in requests per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed_requests as f64 / secs
        }
    }

    /// Power saving of this run relative to a baseline run (positive when
    /// this run uses less power).
    #[must_use]
    pub fn power_saving_vs(&self, baseline: &RunResult) -> f64 {
        let base = baseline.avg_total_power().as_f64();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.avg_total_power().as_f64() / base
    }

    /// Relative increase in mean latency vs. a baseline run.
    #[must_use]
    pub fn latency_overhead_vs(&self, baseline: &RunResult) -> f64 {
        let base = baseline.latency.mean.as_nanos();
        if base == 0 {
            return 0.0;
        }
        self.latency.mean.as_nanos() as f64 / base as f64 - 1.0
    }

    /// Residency fraction for a package C-state this run tracked.
    #[must_use]
    pub fn package_residency(&self, state: PackageCState) -> f64 {
        match state {
            PackageCState::PC1A => self.pc1a_residency,
            PackageCState::PC6 => self.pc6_residency,
            _ => 0.0,
        }
    }

    /// Average per-core residency fraction for a core C-state.
    #[must_use]
    pub fn core_residency(&self, state: CoreCState) -> f64 {
        match state {
            CoreCState::CC0 => self.cc0_fraction,
            CoreCState::CC1 | CoreCState::CC1E => self.cc1_fraction,
            CoreCState::CC6 => self.cc6_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(power: f64, mean_latency_us: u64) -> RunResult {
        RunResult {
            config_name: "Cshallow",
            workload: "memcached",
            offered_rate: 1000.0,
            duration: SimDuration::from_secs(1),
            completed_requests: 1000,
            latency: LatencySummary {
                count: 1000,
                mean: SimDuration::from_micros(mean_latency_us),
                p50: SimDuration::from_micros(mean_latency_us),
                p95: SimDuration::from_micros(mean_latency_us * 2),
                p99: SimDuration::from_micros(mean_latency_us * 3),
                p999: SimDuration::from_micros(mean_latency_us * 4),
                max: SimDuration::from_micros(mean_latency_us * 5),
            },
            latency_sketch: QuantileSketch::latency_default(),
            avg_soc_power: Watts(power),
            avg_dram_power: Watts(5.0),
            cpu_utilization: 0.1,
            cc0_fraction: 0.1,
            cc1_fraction: 0.9,
            cc6_fraction: 0.0,
            all_idle_fraction: 0.4,
            pc1a_residency: 0.0,
            pc6_residency: 0.0,
            pc1a_transitions: 0,
            pc1a_aborted: 0,
            pc6_transitions: 0,
            idle_periods: 100,
            idle_periods_20_200us: 0.6,
            timeseries: None,
            trace: None,
            profile: None,
            events_dispatched: 0,
            finished_at: SimTime::from_secs(1),
        }
    }

    #[test]
    fn derived_metrics() {
        let baseline = dummy(44.0, 120);
        let apc = dummy(30.0, 121);
        assert!((baseline.avg_total_power().as_f64() - 49.0).abs() < 1e-12);
        assert!((baseline.throughput() - 1000.0).abs() < 1e-9);
        let saving = apc.power_saving_vs(&baseline);
        assert!((saving - (1.0 - 35.0 / 49.0)).abs() < 1e-12);
        let overhead = apc.latency_overhead_vs(&baseline);
        assert!(overhead > 0.0 && overhead < 0.01);
        assert_eq!(baseline.package_residency(PackageCState::PC1A), 0.0);
        assert!((baseline.core_residency(CoreCState::CC1) - 0.9).abs() < 1e-12);
    }
}
