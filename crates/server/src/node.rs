//! Embeddable server node: registers one complete server's components into
//! an externally owned [`Simulation`].
//!
//! [`ServerNode`] is the builder both drivers share: a standalone
//! [`crate::sim::ServerSimulation`] registers exactly one node over a
//! [`ServerState`](crate::components::state::ServerState), a
//! [`crate::cluster::ClusterSimulation`] registers N of
//! them (plus a load balancer) over a
//! [`crate::components::state::ClusterState`]. Registration, bootstrap
//! scheduling and result extraction are identical in both cases, which is
//! what makes a 1-node cluster bit-identical to a standalone server.
//!
//! # Determinism across embeddings
//!
//! Component registration names must be unique within a simulation, so
//! cluster nodes register under prefixed names (`"node 1 nic"`, …). RNG
//! streams, however, are derived from the **node's own seed** by the
//! *unprefixed* label (`"nic"`, `"core 3"`, `"bootstrap"`) via
//! [`Simulation::add_component_with_stream`] — a pure function of
//! `(seed, label)` — so a node embedded anywhere draws exactly the streams a
//! standalone server with the same seed would.

use std::cell::RefCell;
use std::rc::Rc;

use apc_pmu::governor::IdleGovernor;
use apc_sim::component::{ComponentId, Simulation};
use apc_sim::rng::SimRng;
use apc_sim::{SimDuration, SimTime};
use apc_soc::cstate::{CoreCState, PackageCState};
use apc_workloads::loadgen::LoadGenerator;

use crate::components::core_exec::CoreExec;
use crate::components::nic::NicArrival;
use crate::components::package::PackageController;
use crate::components::power::PowerTelemetry;
use crate::components::scheduler::Scheduler;
use crate::components::state::HasNode;
use crate::components::timeseries::TimeSeriesSampler;
use crate::components::{Addresses, ServerEvent};
use crate::result::RunResult;

/// Builder that registers one server node's components into an externally
/// owned simulation. See the [module docs](self) for the naming/seeding
/// scheme.
pub struct ServerNode {
    index: usize,
    prefix: String,
}

/// Handles to one registered node: its peer addresses, the power component's
/// id (for the sampling bootstrap) and the package controller (whose FSM
/// statistics the run result needs).
pub struct NodeHandles {
    /// The node's index within the host simulation's shared state.
    pub index: usize,
    /// Component ids of the node's components.
    pub addrs: Addresses,
    /// The power/telemetry component's id.
    pub power: ComponentId,
    /// The time-series sampler's id, when the node's configuration enables
    /// time-series telemetry.
    pub timeseries: Option<ComponentId>,
    /// The node's package controller (APMU/GPMU stats live here).
    pub package: Rc<RefCell<PackageController>>,
}

impl ServerNode {
    /// A builder for node `index` of a multi-node simulation; components are
    /// registered under `"node {index} "`-prefixed names.
    #[must_use]
    pub fn new(index: usize) -> Self {
        ServerNode {
            index,
            prefix: format!("node {index} "),
        }
    }

    /// A builder for the only node of a single-server simulation; components
    /// keep their historical unprefixed names (`"nic"`, `"core 0"`, …).
    #[must_use]
    pub fn standalone() -> Self {
        ServerNode {
            index: 0,
            prefix: String::new(),
        }
    }

    /// The node index this builder registers.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    fn name(&self, base: &str) -> String {
        format!("{}{base}", self.prefix)
    }

    /// Registers the node's five component kinds (power, package, scheduler,
    /// NIC, one executor per core) with `sim` and fills the node's
    /// [`Addresses`] in the shared state.
    ///
    /// `loadgen` selects the arrival path: `Some` gives the node a
    /// self-driving NIC (standalone server), `None` a cluster-fed NIC whose
    /// requests are deposited by the balancer.
    ///
    /// The node's configuration is read from its [`ServerState`] in
    /// `sim.shared()`, which must already hold a state for this index.
    ///
    /// [`ServerState`]: crate::components::state::ServerState
    pub fn register<S: HasNode + 'static>(
        &self,
        sim: &mut Simulation<ServerEvent, S>,
        loadgen: Option<LoadGenerator>,
    ) -> NodeHandles {
        let (seed, platform, noise, sample_every, timeseries_every, cores) = {
            let node = sim.shared().node(self.index);
            (
                node.config.seed,
                node.config.platform.clone(),
                node.config.noise.clone(),
                node.config.power_sample_interval,
                node.config.timeseries_interval.filter(|d| !d.is_zero()),
                node.soc.cores().len(),
            )
        };
        let streams = SimRng::from_seed(seed);

        let power = sim.add_component_with_stream(
            self.name("power"),
            PowerTelemetry::new(self.index, sample_every),
            streams.fork("power"),
        );
        let package = Rc::new(RefCell::new(PackageController::new(
            self.index,
            platform.package_policy,
            platform.package_cstate_limit(),
        )));
        let package_id = sim.add_component_with_stream(
            self.name("package"),
            Rc::clone(&package),
            streams.fork("package"),
        );
        let scheduler = sim.add_component_with_stream(
            self.name("scheduler"),
            Scheduler::new(self.index),
            streams.fork("scheduler"),
        );
        let nic_handler = match loadgen {
            Some(loadgen) => NicArrival::new(self.index, loadgen),
            None => NicArrival::cluster_fed(self.index),
        };
        let nic = sim.add_component_with_stream(self.name("nic"), nic_handler, streams.fork("nic"));
        let core_ids = (0..cores)
            .map(|i| {
                let governor = IdleGovernor::new(&platform);
                sim.add_component_with_stream(
                    self.name(&format!("core {i}")),
                    CoreExec::new(self.index, i, governor, noise.clone()),
                    streams.fork(&format!("core {i}")),
                )
            })
            .collect();

        let timeseries = timeseries_every.map(|every| {
            sim.add_component_with_stream(
                self.name("timeseries"),
                TimeSeriesSampler::new(self.index, every),
                streams.fork("timeseries"),
            )
        });
        let addrs = Addresses {
            nic,
            scheduler,
            package: package_id,
            cores: core_ids,
        };

        // The node's two observers (power accounting, package-residency
        // tracking) read only this node's state, and only events addressed
        // to this node's components can mutate it — so their dispatch hooks
        // are scoped to the node instead of running on every event of the
        // host simulation. In a standalone server this covers every
        // component (identical behaviour); in a cluster it keeps the
        // per-event hook cost O(1) in the node count. The cluster driver
        // additionally subscribes both observers to its balancer, whose
        // arrival events deposit into node NIC buffers (see
        // [`crate::cluster::ClusterSimulation`]).
        let mut node_components = vec![power, package_id, scheduler, nic];
        node_components.extend(addrs.cores.iter().copied());
        node_components.extend(timeseries);
        sim.scope_observer(power, &node_components);
        sim.scope_observer(package_id, &node_components);

        // All ids from `power` (first registered) to the last one belong to
        // this node; the observers use the range to skip events that cannot
        // have mutated node state (see `ServerState::component_range`).
        let first = power.as_usize();
        let last = node_components
            .iter()
            .map(|c| c.as_usize())
            .max()
            .expect("node registers at least one component");
        {
            let state = sim.shared_mut().node_mut(self.index);
            state.addrs = addrs.clone();
            state.component_range = (first, last);
        }
        NodeHandles {
            index: self.index,
            addrs,
            power,
            timeseries,
            package,
        }
    }

    /// Schedules the node's bootstrap events: one background timer per core
    /// (offsets drawn from the node-seed `"bootstrap"` stream so component
    /// streams stay stable), an immediate idle entry for every booted core,
    /// and the first power sample when tracing is enabled.
    ///
    /// The *arrival* bootstrap is the driver's job (the first
    /// `ClientArrival` to a standalone NIC, or the first `ClusterArrival` to
    /// the balancer) and must be scheduled **before** this call to keep the
    /// historical same-timestamp event order.
    pub fn bootstrap<S: HasNode>(
        &self,
        sim: &mut Simulation<ServerEvent, S>,
        handles: &NodeHandles,
    ) {
        let (seed, noise, sample_every, cores) = {
            let node = sim.shared().node(self.index);
            (
                node.config.seed,
                node.config.noise.clone(),
                node.config.power_sample_interval,
                node.soc.cores().len(),
            )
        };
        if let Some(noise) = noise {
            let mut boot_rng = SimRng::from_seed(seed).fork("bootstrap");
            for i in 0..cores {
                let at = SimTime::ZERO + noise.sample_interval(&mut boot_rng);
                sim.shared_mut()
                    .node_mut(self.index)
                    .sched
                    .next_background_at[i] = at;
                sim.schedule(handles.addrs.cores[i], at, ServerEvent::BackgroundTick);
            }
        }
        for i in 0..cores {
            sim.schedule(handles.addrs.cores[i], SimTime::ZERO, ServerEvent::InitIdle);
        }
        if sample_every.is_some() {
            sim.schedule(handles.power, SimTime::ZERO, ServerEvent::PowerSample);
        }
        if let Some(timeseries) = handles.timeseries {
            sim.schedule(timeseries, SimTime::ZERO, ServerEvent::TimeSeriesSample);
        }
    }
}

impl NodeHandles {
    /// Closes the node's telemetry at `end` and reduces it into a
    /// [`RunResult`] — the same reduction for a standalone server and for
    /// every node of a cluster.
    #[must_use]
    pub fn collect_result(&self, shared: &mut impl HasNode, end: SimTime) -> RunResult {
        let package = self.package.borrow();
        let apmu_stats = package.apmu().stats();
        let pc6_entries = package.gpmu().pc6_entries();
        drop(package);

        let state = shared.node_mut(self.index);
        state.finish_telemetry(end);
        let cores = state.soc.cores().len() as f64;
        let util = state.telemetry.busy_core_time.as_secs_f64()
            / (state.config.duration.as_secs_f64() * cores);
        let cc1 = state
            .telemetry
            .core_residency
            .average_fraction_in(CoreCState::CC1)
            + state
                .telemetry
                .core_residency
                .average_fraction_in(CoreCState::CC1E);
        RunResult {
            config_name: state.config.platform.name,
            workload: state.workload_name,
            offered_rate: state.offered_rate,
            duration: state.config.duration,
            completed_requests: state.telemetry.completed_requests,
            latency: state.telemetry.latency.summary(),
            latency_sketch: state.telemetry.latency.sketch().clone(),
            avg_soc_power: state.telemetry.energy.average_soc_power(),
            avg_dram_power: state.telemetry.energy.average_dram_power(),
            cpu_utilization: util,
            cc0_fraction: state
                .telemetry
                .core_residency
                .average_fraction_in(CoreCState::CC0),
            cc1_fraction: cc1,
            cc6_fraction: state
                .telemetry
                .core_residency
                .average_fraction_in(CoreCState::CC6),
            all_idle_fraction: state.telemetry.idle_tracker.idle_fraction(),
            pc1a_residency: state
                .telemetry
                .package_residency
                .fraction_in(PackageCState::PC1A),
            pc6_residency: state
                .telemetry
                .package_residency
                .fraction_in(PackageCState::PC6),
            pc1a_transitions: apmu_stats.pc1a_entries,
            pc1a_aborted: apmu_stats.aborted_entries,
            pc6_transitions: pc6_entries,
            idle_periods: state.telemetry.idle_tracker.period_count(),
            idle_periods_20_200us: state
                .telemetry
                .idle_tracker
                .fraction_between(SimDuration::from_micros(20), SimDuration::from_micros(200)),
            timeseries: state.telemetry.timeseries.take(),
            trace: state
                .telemetry
                .trace
                .take()
                .map(apc_trace::TraceState::into_log),
            // The driver that owns the event loop fills these in: a
            // standalone run knows its dispatch count and profiler state;
            // cluster/chain nodes share one loop, whose totals live on the
            // cluster-level result instead.
            profile: None,
            events_dispatched: 0,
            finished_at: end,
        }
    }
}
