//! Sketch-vs-exact differential suite: for every fixed-seed golden config,
//! re-derive the *exact* latency sample set and pin the sketch summary
//! against it, percentile by percentile.
//!
//! The latency recorder no longer retains samples, so the exact distribution
//! has to come from somewhere else: tracing. With `TraceConfig::new(1)`
//! every arriving request is head-sampled, and on a standalone server every
//! completed client-visible request closes exactly one [`SpanKind::Root`]
//! span covering its server-side time `(arrival, completion)`. The recorded
//! latency for that request is server-side time plus the workload's constant
//! client RTT, so `root.duration() + spec.network_rtt` reconstructs the
//! recorded sample *exactly* — the memcached mix has no background class, so
//! the root-span set and the recorded-sample multiset are the same multiset
//! (asserted via `completed_requests`).
//!
//! Those samples feed the retained-samples [`PercentileRecorder`] (the
//! pre-sketch implementation, kept in `apc-sim` for exactly this purpose)
//! and a lower nearest-rank computation. The suite then checks, per config:
//!
//! - `count`, `max` and `mean` are exact (the sketch's headline guarantee);
//! - each of p50/p95/p99/p999 is within the sketch's 1 % relative-error
//!   contract of the exact lower nearest-rank quantile;
//! - the exact and sketch values both equal pinned literals, so the
//!   per-percentile deltas themselves are golden — any drift in either the
//!   simulation or the sketch shows up as a changed literal, not as silent
//!   movement inside the error band.

use apc_server::config::ServerConfig;
use apc_server::result::RunResult;
use apc_server::sim::run_experiment;
use apc_sim::stats::PercentileRecorder;
use apc_sim::SimDuration;
use apc_trace::{SpanKind, TraceConfig};
use apc_workloads::spec::WorkloadSpec;

const QUANTILES: [f64; 4] = [0.5, 0.95, 0.99, 0.999];

/// One golden config: duration (ms), offered rate, and the pinned
/// `[p50, p95, p99, p999]` pairs — exact lower nearest-rank on the left,
/// sketch estimate on the right.
struct Golden {
    config: fn() -> ServerConfig,
    duration_ms: u64,
    rate: f64,
    exact: [u64; 4],
    sketch: [u64; 4],
}

/// Captured with seed 7. The 50 ms points are the `simulation.rs` golden
/// trio; the 2 ms point is the `export_golden.rs` spec. Re-capture together
/// with those suites if a behavioural change is intentional.
const GOLDENS: [Golden; 4] = [
    Golden {
        config: ServerConfig::c_shallow,
        duration_ms: 50,
        rate: 60_000.0,
        exact: [158_882, 192_897, 226_197, 316_901],
        sketch: [158_000, 192_983, 226_468, 318_180],
    },
    Golden {
        config: ServerConfig::c_deep,
        duration_ms: 50,
        rate: 60_000.0,
        exact: [163_451, 294_907, 319_775, 413_667],
        sketch: [164_448, 293_716, 318_180, 412_661],
    },
    Golden {
        config: ServerConfig::c_pc1a,
        duration_ms: 50,
        rate: 60_000.0,
        exact: [158_905, 192_917, 226_197, 317_055],
        sketch: [158_000, 192_983, 226_468, 318_180],
    },
    Golden {
        config: ServerConfig::c_pc1a,
        duration_ms: 2,
        rate: 20_000.0,
        exact: [161_398, 202_717, 207_018, 207_018],
        sketch: [161_192, 200_859, 209_056, 209_056],
    },
];

/// Runs `golden`'s experiment with every request traced and reconstructs the
/// exact recorded-latency multiset from the root spans, sorted ascending.
fn run_with_exact_samples(golden: &Golden) -> (RunResult, Vec<u64>) {
    let spec = WorkloadSpec::memcached_etc();
    let rtt = spec.network_rtt;
    let r = run_experiment(
        (golden.config)()
            .with_duration(SimDuration::from_millis(golden.duration_ms))
            .with_seed(7)
            .with_trace(TraceConfig::new(1)),
        spec,
        golden.rate,
    );
    let trace = r.trace.as_ref().expect("tracing was enabled");
    assert_eq!(trace.dropped(), 0, "span log must hold the whole run");
    let mut samples: Vec<u64> = trace
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Root)
        .map(|s| (s.duration() + rtt).as_nanos())
        .collect();
    samples.sort_unstable();
    (r, samples)
}

/// Lower nearest-rank quantile, the sketch's reference convention.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    sorted[(q * (sorted.len() - 1) as f64).floor() as usize]
}

#[test]
fn sketch_summary_matches_exact_samples_on_every_golden_config() {
    for golden in &GOLDENS {
        let (r, samples) = run_with_exact_samples(golden);
        let name = r.config_name;
        let label = format!("{name} @{} for {} ms", golden.rate, golden.duration_ms);

        // The root-span multiset IS the recorded-sample multiset.
        assert_eq!(samples.len() as u64, r.completed_requests, "{label}: count");
        assert_eq!(r.latency.count, samples.len(), "{label}: summary count");

        // Exact statistics: max bit-exact, mean to the same rounding the
        // summary applies (sum and count are carried exactly).
        assert_eq!(
            r.latency.max,
            SimDuration::from_nanos(*samples.last().unwrap()),
            "{label}: max"
        );
        let sum: u128 = samples.iter().map(|&v| u128::from(v)).sum();
        let mean = (sum as f64 / samples.len() as f64).round() as u64;
        assert_eq!(
            r.latency.mean,
            SimDuration::from_nanos(mean),
            "{label}: mean"
        );

        // Cross-check through the retained-samples recorder the sketch
        // replaced: same count, same mean (its samples are exact f64s).
        let mut recorder = PercentileRecorder::new();
        for &s in &samples {
            recorder.record(s as f64);
        }
        assert_eq!(recorder.count(), r.latency.count, "{label}: recorder count");
        assert!(
            (recorder.mean() - sum as f64 / samples.len() as f64).abs() < 1e-6,
            "{label}: recorder mean"
        );

        // Per-percentile: contract bound AND pinned literals on both sides.
        let summary = [r.latency.p50, r.latency.p95, r.latency.p99, r.latency.p999];
        for (i, q) in QUANTILES.into_iter().enumerate() {
            let exact = exact_quantile(&samples, q);
            let estimate = summary[i].as_nanos();
            let delta = estimate.abs_diff(exact) as f64;
            assert!(
                delta <= 0.01 * exact as f64 + 1.0,
                "{label}: q={q} exact={exact} sketch={estimate} (delta {delta})"
            );
            assert_eq!(exact, golden.exact[i], "{label}: exact q={q}");
            assert_eq!(estimate, golden.sketch[i], "{label}: sketch q={q}");
        }
    }
}

#[test]
fn tracing_does_not_perturb_the_result() {
    // The differential route only proves anything if turning tracing on
    // leaves the simulated behaviour untouched: same seed with and without
    // tracing must produce identical summaries.
    let run = |trace: bool| {
        let mut config = ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(2))
            .with_seed(7);
        if trace {
            config = config.with_trace(TraceConfig::new(1));
        }
        run_experiment(config, WorkloadSpec::memcached_etc(), 20_000.0)
    };
    let plain = run(false);
    let traced = run(true);
    assert_eq!(plain.latency, traced.latency);
    assert_eq!(plain.completed_requests, traced.completed_requests);
    assert_eq!(plain.avg_soc_power, traced.avg_soc_power);
}
