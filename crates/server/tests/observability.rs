//! Observability-layer tests: request tracing and the engine self-profiler
//! must never perturb a simulation. Every shape (single, cluster, chain,
//! parallel) is run twice — observability on and off — and the results,
//! stripped of the trace log and profile report themselves, must be
//! **bit-identical**. A second group checks the span trees: the pipeline
//! spans of every traced request are contiguous and sum exactly to its
//! end-to-end latency, with wake spans named after the C-state they exit.

use apc_network::NetworkConfig;
use apc_server::balancer::RoutingPolicyKind;
use apc_server::chain::{run_chain_experiment, ChainMember, ChainResult, RequestGraph};
use apc_server::cluster::{run_cluster_experiment, ClusterMember, ClusterResult};
use apc_server::config::ServerConfig;
use apc_server::result::RunResult;
use apc_server::sim::run_experiment;
use apc_sim::SimDuration;
use apc_trace::{Span, SpanKind, TraceConfig, TraceLog};
use apc_workloads::chain::TierService;
use apc_workloads::spec::WorkloadSpec;

/// Trace every root request, with profiling on.
fn observed(config: &ServerConfig) -> ServerConfig {
    config
        .clone()
        .with_trace(TraceConfig::new(1))
        .with_profile()
}

fn strip_run(mut r: RunResult) -> RunResult {
    r.trace = None;
    r.profile = None;
    r
}

fn strip_cluster(mut c: ClusterResult) -> ClusterResult {
    c.trace = None;
    c.profile = None;
    c
}

fn strip_chain(mut c: ChainResult) -> ChainResult {
    c.trace = None;
    c.profile = None;
    c
}

fn platforms() -> [ServerConfig; 3] {
    [
        ServerConfig::c_shallow(),
        ServerConfig::c_deep(),
        ServerConfig::c_pc1a(),
    ]
}

#[test]
fn tracing_never_perturbs_single_runs() {
    for base in platforms() {
        let config = base
            .with_duration(SimDuration::from_millis(30))
            .with_seed(5);
        let plain = run_experiment(config.clone(), WorkloadSpec::memcached_etc(), 40_000.0);
        let traced = run_experiment(observed(&config), WorkloadSpec::memcached_etc(), 40_000.0);
        assert!(
            !traced
                .trace
                .as_ref()
                .expect("trace log collected")
                .is_empty(),
            "tracing every request on {} collected nothing",
            plain.config_name
        );
        assert!(traced.profile.is_some(), "profiling produced no report");
        assert!(plain.trace.is_none() && plain.profile.is_none());
        assert_eq!(
            strip_run(traced),
            plain,
            "tracing perturbed a single run on {}",
            plain.config_name
        );
    }
}

#[test]
fn tracing_never_perturbs_cluster_runs() {
    for base in platforms() {
        let config = base
            .with_duration(SimDuration::from_millis(20))
            .with_seed(11);
        for policy in RoutingPolicyKind::all() {
            let run = |c: &ServerConfig| {
                run_cluster_experiment(c, 3, policy, WorkloadSpec::memcached_etc(), 45_000.0)
            };
            let plain = run(&config);
            let traced = run(&observed(&config));
            assert!(!traced.trace.as_ref().expect("trace log").is_empty());
            assert!(traced.profile.is_some());
            assert_eq!(
                strip_cluster(traced),
                plain,
                "tracing perturbed a {} cluster",
                policy.name()
            );
        }
    }
}

#[test]
fn tracing_never_perturbs_chain_runs() {
    let graph = RequestGraph::fanout(TierService::frontend(), TierService::memcached_leaf(), 4);
    for base in platforms() {
        let config = base
            .with_duration(SimDuration::from_millis(20))
            .with_seed(3);
        for policy in RoutingPolicyKind::all() {
            let run = |c: &ServerConfig| run_chain_experiment(c, 3, policy, graph.clone(), 8_000.0);
            let plain = run(&config);
            let traced = run(&observed(&config));
            assert!(!traced.trace.as_ref().expect("trace log").is_empty());
            assert!(traced.profile.is_some());
            assert_eq!(
                strip_chain(traced),
                plain,
                "tracing perturbed a {} chain",
                policy.name()
            );
        }
    }
}

/// With a nonzero-latency fabric and a pinned 4-worker budget, the plain
/// run takes the partitioned parallel path while the traced run falls back
/// to the sequential loop — the two are bit-identical by the conservative-
/// lookahead guarantee, so this doubles as a cross-execution-mode check.
#[test]
fn tracing_never_perturbs_parallel_runs() {
    let base = ServerConfig::c_pc1a()
        .with_duration(SimDuration::from_millis(20))
        .with_seed(23);
    let net = NetworkConfig::two_tier(SimDuration::from_micros(5), 4);

    let cluster = |c: &ServerConfig| {
        ClusterMember::homogeneous(
            c,
            4,
            RoutingPolicyKind::RoundRobin,
            WorkloadSpec::memcached_etc(),
            60_000.0,
        )
        .with_network(net)
        .run_with_parallelism(Some(4))
    };
    let plain = cluster(&base);
    let traced = cluster(&observed(&base));
    assert!(!traced.trace.as_ref().expect("trace log").is_empty());
    assert_eq!(
        strip_cluster(traced),
        strip_cluster(plain),
        "tracing perturbed a parallel cluster run"
    );

    let graph = RequestGraph::fanout(TierService::frontend(), TierService::memcached_leaf(), 4);
    let chain = |c: &ServerConfig| {
        ChainMember::homogeneous(
            c,
            4,
            RoutingPolicyKind::JoinShortestQueue,
            graph.clone(),
            8_000.0,
        )
        .with_network(net)
        .run_with_parallelism(Some(4))
    };
    let plain = chain(&base);
    let traced = chain(&observed(&base));
    assert!(!traced.trace.as_ref().expect("trace log").is_empty());
    assert_eq!(
        strip_chain(traced),
        strip_chain(plain),
        "tracing perturbed a parallel chain run"
    );
}

/// The profiler is passive either way, but its report must be filled in
/// *both* execution modes (the parallel path merges per-partition engine
/// counters and adds per-worker rows).
#[test]
fn parallel_profile_reports_cover_all_workers() {
    let base = ServerConfig::c_pc1a()
        .with_duration(SimDuration::from_millis(20))
        .with_seed(23)
        .with_profile();
    let net = NetworkConfig::two_tier(SimDuration::from_micros(5), 4);
    let result = ClusterMember::homogeneous(
        &base,
        4,
        RoutingPolicyKind::RoundRobin,
        WorkloadSpec::memcached_etc(),
        60_000.0,
    )
    .with_network(net)
    .run_with_parallelism(Some(4));
    let profile = result.profile.expect("parallel profile report");
    assert!(profile.engine.dispatched > 0);
    assert!(!profile.events.is_empty(), "per-kind census retained");
    let workers: Vec<u32> = profile.workers.iter().map(|w| w.worker).collect();
    assert_eq!(workers, [0, 1, 2, 3], "one row per worker, in order");
    assert!(
        profile.workers.iter().map(|w| w.epochs).sum::<u64>() > 0,
        "epoch barrier counts recorded"
    );
}

/// Finds the spans of `trace_id`, keyed by kind.
fn spans_of(log: &TraceLog, trace_id: u64) -> Vec<&Span> {
    log.spans().iter().filter(|s| s.trace == trace_id).collect()
}

/// Every traced request's pipeline spans {wire-out, coalesce, queue, wake,
/// service} are contiguous and sum exactly to the root span — the recorded
/// end-to-end latency is fully attributed, never double-counted.
#[test]
fn span_chains_partition_end_to_end_latency() {
    let config = ServerConfig::c_pc1a()
        .with_duration(SimDuration::from_millis(30))
        .with_seed(7);
    let result = run_experiment(observed(&config), WorkloadSpec::memcached_etc(), 40_000.0);
    let log = result.trace.expect("trace log");
    assert_eq!(log.dropped(), 0, "log bound hit in a short run");
    let roots: Vec<&Span> = log
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Root)
        .collect();
    assert!(!roots.is_empty(), "no root spans collected");
    let mut saw_wake_exit = false;
    for root in &roots {
        let spans = spans_of(&log, root.trace);
        let by_kind = |kind: SpanKind| -> &Span {
            spans
                .iter()
                .find(|s| s.kind == kind)
                .unwrap_or_else(|| panic!("trace {} missing a {kind:?} span", root.trace))
        };
        let wire = by_kind(SpanKind::WireOut);
        let coalesce = by_kind(SpanKind::Coalesce);
        let queue = by_kind(SpanKind::Queue);
        let wake = by_kind(SpanKind::Wake);
        let service = by_kind(SpanKind::Service);
        // Contiguity: each stage starts where the previous one ended.
        assert_eq!(wire.start, root.start);
        assert_eq!(coalesce.start, wire.end);
        assert_eq!(queue.start, coalesce.end);
        assert_eq!(wake.start, queue.end);
        assert_eq!(service.start, wake.end);
        assert_eq!(service.end, root.end);
        // And therefore the stage durations partition the e2e latency.
        let total = [wire, coalesce, queue, wake, service]
            .iter()
            .map(|s| s.duration().as_nanos())
            .sum::<u64>();
        assert_eq!(total, root.duration().as_nanos(), "trace {}", root.trace);
        // Wake spans are named after the C-state the core exited.
        assert!(
            ["CC0", "CC1", "CC1E", "CC6"].contains(&wake.label),
            "unexpected wake label `{}`",
            wake.label
        );
        if wake.label != "CC0" && !wake.duration().is_zero() {
            saw_wake_exit = true;
        }
        // Service runs on a core lane, never the node's transport lane 0.
        assert!(service.lane >= 1);
        assert_eq!(root.lane, 0);
    }
    assert!(
        saw_wake_exit,
        "no request ever paid a C-state exit at trough load"
    );
}

/// Chain traces add coordinator-side tier/join/root spans: the root span
/// covers the whole chain, every tier span nests inside it, and the join
/// span accounts the straggler wait after the first leaf finished.
#[test]
fn chain_traces_carry_tier_and_join_spans() {
    let base = ServerConfig::c_pc1a()
        .with_duration(SimDuration::from_millis(25))
        .with_seed(13);
    let graph = RequestGraph::fanout(TierService::frontend(), TierService::memcached_leaf(), 4);
    let result = run_chain_experiment(
        &observed(&base),
        3,
        RoutingPolicyKind::JoinShortestQueue,
        graph,
        8_000.0,
    );
    let log = result.trace.expect("trace log");
    let roots: Vec<&Span> = log
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Root && s.node == 3)
        .collect();
    assert!(!roots.is_empty(), "no coordinator root spans");
    for root in &roots {
        let spans = spans_of(&log, root.trace);
        let tiers: Vec<&&Span> = spans.iter().filter(|s| s.kind == SpanKind::Tier).collect();
        assert!(!tiers.is_empty(), "trace {} has no tier spans", root.trace);
        for tier in &tiers {
            assert!(tier.start >= root.start && tier.end <= root.end);
        }
        for join in spans.iter().filter(|s| s.kind == SpanKind::Join) {
            assert!(join.start >= root.start && join.end <= root.end);
        }
        // The per-request pipeline spans on worker nodes joined this trace.
        assert!(
            spans
                .iter()
                .any(|s| s.kind == SpanKind::Service && s.node < 3),
            "trace {} has no worker-node service span",
            root.trace
        );
    }
}

/// Head sampling honours the 1-in-N rate statistically and draws from a
/// dedicated RNG fork: two sampled runs of the same seed agree exactly.
#[test]
fn head_sampling_is_deterministic_and_thins_the_log() {
    let config = ServerConfig::c_pc1a()
        .with_duration(SimDuration::from_millis(30))
        .with_seed(7);
    let all = run_experiment(
        config.clone().with_trace(TraceConfig::new(1)),
        WorkloadSpec::memcached_etc(),
        40_000.0,
    );
    let sampled = || {
        run_experiment(
            config.clone().with_trace(TraceConfig::new(4)),
            WorkloadSpec::memcached_etc(),
            40_000.0,
        )
    };
    let a = sampled();
    let b = sampled();
    assert_eq!(a.trace, b.trace, "head sampling is not deterministic");
    let full = all.trace.as_ref().expect("full log").spans().len();
    let thin = a.trace.as_ref().expect("thinned log").spans().len();
    assert!(
        thin < full,
        "1-in-4 sampling did not thin the log ({thin} vs {full})"
    );
    assert!(thin > 0, "1-in-4 sampling kept nothing");
    // Sampling only changes the trace log, nothing else.
    assert_eq!(strip_run(a), strip_run(all));
}

/// The retained-span bound is enforced, counting what it sheds.
#[test]
fn trace_log_bound_counts_dropped_spans() {
    let config = ServerConfig::c_pc1a()
        .with_duration(SimDuration::from_millis(30))
        .with_seed(7)
        .with_trace(TraceConfig::new(1).with_max_spans(8));
    let result = run_experiment(config, WorkloadSpec::memcached_etc(), 40_000.0);
    let log = result.trace.expect("trace log");
    assert_eq!(log.spans().len(), 8, "bound not enforced");
    assert!(log.dropped() > 0, "shed spans not counted");
}
