//! Unit tests of the component dispatch machinery: stale-epoch handling,
//! PC1A entry/abort event ordering, uncore gating and seed determinism.

use apc_server::config::ServerConfig;
use apc_server::fleet::Fleet;
use apc_server::result::RunResult;
use apc_server::sim::{run_experiment, ServerSimulation};
use apc_sim::{SimDuration, SimTime};
use apc_workloads::loadgen::LoadGenerator;
use apc_workloads::spec::WorkloadSpec;

fn run_seeded(seed: u64, rate: f64) -> RunResult {
    run_experiment(
        ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(100))
            .with_seed(seed),
        WorkloadSpec::memcached_etc(),
        rate,
    )
}

/// Two runs with the same seed must agree bit-for-bit on every metric the
/// simulation produces — the root RNG is split per component by name, so no
/// component's draws can bleed into another's stream.
#[test]
fn identical_seeds_are_bit_identical() {
    let a = run_seeded(9, 10_000.0);
    let b = run_seeded(9, 10_000.0);
    assert_eq!(a.completed_requests, b.completed_requests);
    assert_eq!(a.pc1a_transitions, b.pc1a_transitions);
    assert_eq!(a.pc1a_aborted, b.pc1a_aborted);
    assert_eq!(a.idle_periods, b.idle_periods);
    assert_eq!(a.latency.mean, b.latency.mean);
    assert_eq!(a.latency.p99, b.latency.p99);
    assert!((a.avg_soc_power.as_f64() - b.avg_soc_power.as_f64()).abs() == 0.0);
    assert!((a.cpu_utilization - b.cpu_utilization).abs() == 0.0);
    assert!((a.pc1a_residency - b.pc1a_residency).abs() == 0.0);
}

#[test]
fn different_seeds_diverge() {
    let a = run_seeded(1, 10_000.0);
    let b = run_seeded(2, 10_000.0);
    // Statistically impossible to collide on all of these at once.
    assert!(
        a.completed_requests != b.completed_requests
            || a.latency.mean != b.latency.mean
            || a.pc1a_transitions != b.pc1a_transitions,
        "two different seeds produced identical runs"
    );
}

/// Stale-epoch events must be dropped: a core whose idle entry is superseded
/// by a wake assignment (and vice versa) sees the superseded completion
/// event arrive and must ignore it. If stale events were applied, the core
/// would double-complete transitions and the run would either panic (work
/// accounting) or corrupt residency; a busy run at high load exercises
/// thousands of such races.
#[test]
fn stale_transition_events_are_ignored_under_churn() {
    // High load + bursty arrivals + background noise maximises
    // idle-entry/wake races per core.
    let r = run_seeded(7, 150_000.0);
    assert!(
        r.completed_requests > 10_000,
        "completed {}",
        r.completed_requests
    );
    // Residency fractions stay normalised: a double-applied transition would
    // corrupt the per-core residency clocks.
    let total = r.cc0_fraction + r.cc1_fraction + r.cc6_fraction;
    assert!(
        (total - 1.0).abs() < 1e-6,
        "core residency fractions sum to {total}"
    );
    assert!(r.cpu_utilization <= 1.0);
}

/// PC1A entry/abort ordering: every abort is triggered by a wake racing the
/// entry flow, so aborts can never exceed the number of entry attempts
/// (completed entries + aborts), and completed entries match what the
/// package residency observed.
#[test]
fn pc1a_entry_abort_ordering_is_consistent() {
    for seed in [3, 5, 8, 13] {
        let r = run_seeded(seed, 60_000.0);
        let attempts = r.pc1a_transitions + r.pc1a_aborted;
        assert!(attempts > 0, "seed {seed}: no PC1A attempts at 60K QPS");
        assert!(r.pc1a_transitions > 0, "seed {seed}: every attempt aborted");
        if r.pc1a_residency > 0.0 {
            assert!(
                r.pc1a_transitions > 0,
                "seed {seed}: residency without a completed entry"
            );
        }
        // An aborted entry never counts as a transition into residency.
        assert!(
            r.pc1a_residency < 1.0,
            "seed {seed}: residency {}",
            r.pc1a_residency
        );
    }
}

/// The uncore gate: while a PC1A/PC6 exit flow is in flight, no request may
/// start executing. Observable as latency: every request delivered into a
/// resident package pays the exit before service, so the minimum end-to-end
/// latency stays above network RTT + service floor.
#[test]
fn dispatch_waits_for_uncore_exit() {
    let r = run_experiment(
        ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(100))
            .with_seed(11),
        WorkloadSpec::memcached_etc(),
        2_000.0,
    );
    // At 2K QPS the package is resident most of the time, so nearly every
    // request wakes it; none may undercut the 117 us network RTT.
    assert!(r.completed_requests > 50);
    assert!(r.latency.p50 >= SimDuration::from_micros(117));
}

/// A fleet over >= 4 servers with distinct seeds: deterministic, aggregated
/// results (the acceptance scenario for the fleet runner).
#[test]
fn fleet_of_four_is_deterministic_and_aggregates() {
    let config = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(50));
    let build = || Fleet::homogeneous(&config, WorkloadSpec::memcached_etc, 15_000.0, 4).run();
    let a = build();
    let b = build();
    assert_eq!(a.servers(), 4);

    // Distinct seeds: members genuinely differ.
    let requests: Vec<u64> = a.runs.iter().map(|r| r.completed_requests).collect();
    assert!(
        requests.windows(2).any(|w| w[0] != w[1]),
        "all fleet members produced identical request counts {requests:?}"
    );

    // Deterministic: the same fleet built twice agrees exactly.
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.completed_requests, y.completed_requests);
        assert_eq!(x.pc1a_transitions, y.pc1a_transitions);
        assert_eq!(x.latency.mean, y.latency.mean);
        assert!((x.avg_soc_power.as_f64() - y.avg_soc_power.as_f64()).abs() == 0.0);
    }

    // Aggregates are consistent with the members.
    assert_eq!(a.total_completed_requests(), requests.iter().sum::<u64>());
    assert!(a.aggregate_throughput() > 0.0);
    assert!(a.mean_soc_power_w() > 0.0);
    assert!(a.total_power_w() > a.mean_soc_power_w());
    assert!(a.mean_pc1a_residency() > 0.0);
    assert!(a.worst_p99() >= a.mean_latency());
}

/// The component registry exposes the expected layout: one NIC, one
/// scheduler, one package controller, one power component and one component
/// per core.
#[test]
fn component_registry_has_expected_layout() {
    let config = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(10));
    let loadgen = LoadGenerator::new(WorkloadSpec::memcached_etc(), 1_000.0, config.seed);
    let sim = ServerSimulation::new(config, loadgen);
    let inner = sim.simulation();
    let cores = sim.state().soc.cores().len();
    assert_eq!(inner.component_count(), 4 + cores);
    assert!(inner.lookup("nic").is_some());
    assert!(inner.lookup("scheduler").is_some());
    assert!(inner.lookup("package").is_some());
    assert!(inner.lookup("power").is_some());
    for i in 0..cores {
        assert!(
            inner.lookup(&format!("core {i}")).is_some(),
            "core {i} missing"
        );
    }
    assert_eq!(inner.now(), SimTime::ZERO);
}
