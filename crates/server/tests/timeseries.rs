//! Behavioural tests of the time-series telemetry sink.

use apc_server::config::ServerConfig;
use apc_server::sim::run_experiment;
use apc_sim::{SimDuration, SimTime};
use apc_workloads::spec::WorkloadSpec;

fn run(config: ServerConfig) -> apc_server::result::RunResult {
    run_experiment(
        config
            .with_duration(SimDuration::from_millis(5))
            .with_seed(7),
        WorkloadSpec::memcached_etc(),
        40_000.0,
    )
}

#[test]
fn sampler_records_one_sample_per_interval() {
    let every = SimDuration::from_micros(100);
    let result = run(ServerConfig::c_pc1a().with_timeseries(every));
    let ts = result.timeseries.as_ref().expect("series enabled");
    assert_eq!(ts.interval(), every);
    // Samples at 0, 100 us, ..., strictly below the 5 ms horizon.
    assert_eq!(ts.len(), 50, "got {} samples", ts.len());
    for (i, s) in ts.samples().iter().enumerate() {
        assert_eq!(s.at, SimTime::ZERO + every.mul_f64(i as f64));
        assert!(s.soc_power_w > 0.0);
    }
}

#[test]
fn residency_deltas_tile_the_sampling_interval() {
    let every = SimDuration::from_micros(200);
    let result = run(ServerConfig::c_pc1a().with_timeseries(every));
    let ts = result.timeseries.expect("series enabled");
    // Skip the t = 0 sample (its "interval" is empty); every later sample's
    // four deltas must sum exactly to the interval they cover.
    for s in &ts.samples()[1..] {
        let sum = s.pc0_delta + s.pc0_idle_delta + s.pc1a_delta + s.pc6_delta;
        assert_eq!(sum, every, "deltas at {} sum to {sum}", s.at);
    }
    // Under CPC1A at moderate load the node visits PC1A within the window.
    let pc1a_total: SimDuration = ts.samples().iter().map(|s| s.pc1a_delta).sum();
    assert!(pc1a_total > SimDuration::ZERO);
}

#[test]
fn sampler_never_perturbs_request_level_outcomes() {
    let plain = run(ServerConfig::c_pc1a());
    let sampled = run(ServerConfig::c_pc1a().with_timeseries(SimDuration::from_micros(100)));
    assert!(plain.timeseries.is_none());
    // The sampler only reads state: every discrete outcome is identical.
    assert_eq!(plain.completed_requests, sampled.completed_requests);
    assert_eq!(plain.latency, sampled.latency);
    assert_eq!(plain.pc1a_transitions, sampled.pc1a_transitions);
    assert_eq!(plain.pc6_transitions, sampled.pc6_transitions);
    assert_eq!(plain.idle_periods, sampled.idle_periods);
    assert_eq!(plain.pc1a_residency, sampled.pc1a_residency);
}

#[test]
fn queue_depth_tracks_load() {
    let result = run(ServerConfig::c_shallow().with_timeseries(SimDuration::from_micros(50)));
    let ts = result.timeseries.expect("series enabled");
    // At 40 K QPS some samples must catch requests in flight.
    assert!(ts.samples().iter().any(|s| s.queue_depth > 0));
    assert!(ts.samples().iter().any(|s| s.busy_cores > 0));
}

#[test]
fn zero_interval_disables_the_series() {
    let result = run(ServerConfig::c_pc1a().with_timeseries(SimDuration::ZERO));
    assert!(result.timeseries.is_none());
}
