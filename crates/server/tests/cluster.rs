//! Cluster-layer tests: the 1-node regression against the standalone server
//! simulation, bit-identical determinism, parallel/sequential cluster-fleet
//! equality and routing-policy behaviour.

use apc_server::balancer::RoutingPolicyKind;
use apc_server::cluster::{run_cluster_experiment, ClusterFleet, ClusterMember, ClusterSimulation};
use apc_server::config::ServerConfig;
use apc_server::fleet::Fleet;
use apc_sim::SimDuration;
use apc_workloads::loadgen::LoadGenerator;
use apc_workloads::spec::WorkloadSpec;

/// A 1-node cluster must reproduce the standalone `ServerSimulation`
/// **bit-for-bit** for the same node config and loadgen seed, under every
/// routing policy (with one node, routing is trivial) and every platform.
/// This is the acceptance regression pinning the embeddable-node refactor.
#[test]
fn one_node_cluster_reproduces_server_simulation_exactly() {
    for base in [
        ServerConfig::c_shallow(),
        ServerConfig::c_deep(),
        ServerConfig::c_pc1a(),
    ] {
        let config = base
            .with_duration(SimDuration::from_millis(50))
            .with_seed(9);
        let rate = 30_000.0;
        let mut standalone =
            apc_server::sim::run_experiment(config.clone(), WorkloadSpec::memcached_etc(), rate);
        // The event census is loop-driver metadata, not node behaviour: a
        // standalone server counts its own loop, while a cluster node shares
        // one loop (with balancer/deposit events) whose census lives on the
        // `ClusterResult`. Every simulated metric must still match exactly.
        standalone.events_dispatched = 0;
        for policy in RoutingPolicyKind::all() {
            let loadgen = LoadGenerator::new(WorkloadSpec::memcached_etc(), rate, config.seed);
            let cluster =
                ClusterSimulation::new(config.seed, vec![config.clone()], policy.build(), loadgen)
                    .run();
            assert_eq!(cluster.nodes.runs.len(), 1);
            assert_eq!(
                cluster.nodes.runs[0],
                standalone,
                "1-node cluster under {} diverged from the standalone simulation on {}",
                policy.name(),
                standalone.config_name,
            );
            assert_eq!(cluster.total_routed(), cluster.routed[0]);
        }
    }
}

/// Same seed ⇒ bit-identical `ClusterResult`, for every built-in policy.
#[test]
fn identical_seeds_give_bit_identical_cluster_results() {
    let base = ServerConfig::c_pc1a()
        .with_duration(SimDuration::from_millis(25))
        .with_seed(17);
    for policy in RoutingPolicyKind::all() {
        let run =
            || run_cluster_experiment(&base, 4, policy, WorkloadSpec::memcached_etc(), 60_000.0);
        assert_eq!(
            run(),
            run(),
            "policy {} is not deterministic",
            policy.name()
        );
    }
}

#[test]
fn different_cluster_seeds_diverge() {
    let run = |seed: u64| {
        let base = ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(25))
            .with_seed(seed);
        run_cluster_experiment(
            &base,
            3,
            RoutingPolicyKind::Random,
            WorkloadSpec::memcached_etc(),
            45_000.0,
        )
    };
    assert_ne!(
        run(1),
        run(2),
        "two different seeds produced identical runs"
    );
}

/// A parallel cluster fleet must be bit-identical to the sequential path,
/// with results in member order.
#[test]
fn cluster_fleet_parallel_matches_sequential() {
    let build = || {
        let base = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(20));
        let mut fleet = ClusterFleet::new();
        for policy in RoutingPolicyKind::all() {
            fleet.push(ClusterMember::homogeneous(
                &base,
                3,
                policy,
                WorkloadSpec::memcached_etc(),
                45_000.0,
            ));
        }
        fleet
    };
    let parallel = build().with_parallelism(4).run();
    let sequential = build().with_parallelism(1).run_sequential();
    assert_eq!(parallel, sequential);
    let policies: Vec<&str> = parallel.iter().map(|r| r.policy).collect();
    assert_eq!(
        policies,
        [
            "random",
            "round-robin",
            "join-shortest-queue",
            "power-aware"
        ]
    );
}

/// Node seeds follow the canonical `Fleet::member_seed` fork, so cluster
/// nodes are pairwise independent (they genuinely differ).
#[test]
fn cluster_nodes_run_distinct_streams() {
    let base = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(25));
    let result = run_cluster_experiment(
        &base,
        4,
        RoutingPolicyKind::RoundRobin,
        WorkloadSpec::memcached_etc(),
        80_000.0,
    );
    let first = &result.nodes.runs[0];
    assert!(
        result.nodes.runs[1..].iter().any(|r| r != first),
        "all nodes produced identical results despite distinct seeds"
    );
    // Round-robin spreads exactly evenly (total divisible or off by < n).
    let max = result.routed.iter().copied().max().unwrap();
    let min = result.routed.iter().copied().min().unwrap();
    assert!(
        max - min <= 1,
        "round-robin routed unevenly: {:?}",
        result.routed
    );
}

/// Policy behaviour at the routing level: spreading policies stay balanced,
/// the packing policy concentrates load.
#[test]
fn power_aware_packs_while_spreaders_balance() {
    let base = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(30));
    let run =
        |policy| run_cluster_experiment(&base, 4, policy, WorkloadSpec::memcached_etc(), 20_000.0);
    let rr = run(RoutingPolicyKind::RoundRobin);
    let packed = run(RoutingPolicyKind::PowerAware);
    assert!(
        packed.routing_imbalance() > rr.routing_imbalance() + 0.5,
        "power-aware imbalance {:.2} not above round-robin {:.2}",
        packed.routing_imbalance(),
        rr.routing_imbalance()
    );
    // Both serve the whole offered stream.
    assert!(rr.nodes.total_completed_requests() > 0);
    assert!(packed.nodes.total_completed_requests() > 0);
}

/// JSQ keeps every routed request accounted for and yields finite stats.
#[test]
fn join_shortest_queue_is_plausible() {
    let base = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(25));
    let result = run_cluster_experiment(
        &base,
        4,
        RoutingPolicyKind::JoinShortestQueue,
        WorkloadSpec::memcached_etc(),
        100_000.0,
    );
    assert_eq!(result.policy, "join-shortest-queue");
    assert!(result.total_routed() >= result.nodes.total_completed_requests());
    assert!(result.nodes.total_power_w() > 0.0);
    let idle_band = result.idle_periods_20_200us();
    assert!((0.0..=1.0).contains(&idle_band));
    assert!(result.total_idle_periods() > 0);
    // The summary row renders and names the policy.
    let rendered = format!("{result}");
    assert!(rendered.contains("join-shortest-queue"), "{rendered}");
    assert!(rendered.contains("node   0"), "{rendered}");
}

/// The cluster registry hosts N complete servers plus the balancer, with
/// per-node prefixed names.
#[test]
fn cluster_registry_has_expected_layout() {
    let config = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(10));
    let n = 3;
    let configs: Vec<ServerConfig> = (0..n)
        .map(|i| config.clone().with_seed(Fleet::member_seed(config.seed, i)))
        .collect();
    let loadgen = LoadGenerator::new(WorkloadSpec::memcached_etc(), 10_000.0, config.seed);
    let sim = ClusterSimulation::new(
        config.seed,
        configs,
        RoutingPolicyKind::RoundRobin.build(),
        loadgen,
    );
    let cores = sim.state().nodes[0].soc.cores().len();
    let inner = sim.simulation();
    assert_eq!(sim.node_count(), n);
    // N complete nodes + the balancer + the (always-registered) fabric.
    assert_eq!(inner.component_count(), n * (4 + cores) + 2);
    assert!(inner.lookup("balancer").is_some());
    assert!(inner.lookup("fabric").is_some());
    for node in 0..n {
        assert!(inner.lookup(&format!("node {node} nic")).is_some());
        assert!(inner.lookup(&format!("node {node} scheduler")).is_some());
        assert!(inner.lookup(&format!("node {node} package")).is_some());
        assert!(inner.lookup(&format!("node {node} power")).is_some());
        for c in 0..cores {
            assert!(inner.lookup(&format!("node {node} core {c}")).is_some());
        }
    }
}

/// At trough load, the packing policy deepens package idle on the spared
/// nodes: its *maximum* per-node PC1A residency beats the spreading
/// policy's, while the spreading policy fragments idle across all nodes.
#[test]
fn packing_deepens_idle_on_spared_nodes() {
    let base = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(40));
    let run =
        |policy| run_cluster_experiment(&base, 4, policy, WorkloadSpec::memcached_etc(), 12_000.0);
    let spread = run(RoutingPolicyKind::Random);
    let packed = run(RoutingPolicyKind::PowerAware);
    let max_res = |r: &apc_server::cluster::ClusterResult| {
        r.nodes
            .runs
            .iter()
            .map(|n| n.pc1a_residency)
            .fold(0.0f64, f64::max)
    };
    assert!(
        max_res(&packed) > max_res(&spread),
        "packing max residency {:.3} not above spreading {:.3}",
        max_res(&packed),
        max_res(&spread)
    );
}
