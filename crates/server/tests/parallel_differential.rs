//! Differential conformance suite for the conservative-lookahead parallel
//! event core: every partitioned run must be **bit-identical** (exact
//! `PartialEq`, no tolerances) to the sequential event loop that produced
//! all existing goldens — across platforms, routing policies, cluster and
//! chain drivers, two-tier and fat-tree topologies, and forced worker
//! counts of 2/4/8 (exercising multi-node partitions per worker and more
//! workers than the 1-CPU CI host has cores).

use apc_network::NetworkConfig;
use apc_server::balancer::RoutingPolicyKind;
use apc_server::chain::{ChainMember, RequestGraph};
use apc_server::cluster::ClusterMember;
use apc_server::config::ServerConfig;
use apc_server::parallel::{execution_plan, ExecutionPlan, SequentialReason};
use apc_sim::{SimDuration, SimTime};
use apc_workloads::spec::WorkloadSpec;

/// Forced worker counts: uneven node/worker splits and oversubscription.
const WORKERS: [usize; 3] = [2, 4, 8];

fn two_tier() -> NetworkConfig {
    NetworkConfig::two_tier(SimDuration::from_micros(2), 4)
}

fn fat_tree() -> NetworkConfig {
    NetworkConfig::fat_tree(SimDuration::from_micros(1), 4, 2, 3.0)
}

fn base(platform: fn() -> ServerConfig, seed: u64) -> ServerConfig {
    platform()
        .with_duration(SimDuration::from_millis(10))
        .with_seed(seed)
}

/// Runs `member()` sequentially once, then partitioned at every forced
/// worker count, asserting the parallel plan actually engaged and the
/// results match bit-for-bit.
fn assert_cluster_identical(label: &str, member: impl Fn() -> ClusterMember) {
    let sequential = member().run();
    for workers in WORKERS {
        let m = member();
        assert!(
            matches!(
                execution_plan(m.nodes.len(), m.network.as_ref(), Some(workers)),
                ExecutionPlan::Parallel { .. }
            ),
            "{label}: expected a parallel plan at {workers} workers"
        );
        let parallel = m.run_with_parallelism(Some(workers));
        assert_eq!(
            parallel, sequential,
            "{label}: parallel run diverged at {workers} workers"
        );
    }
}

fn assert_chain_identical(label: &str, member: impl Fn() -> ChainMember) {
    let sequential = member().run();
    for workers in WORKERS {
        let m = member();
        assert!(
            matches!(
                execution_plan(m.nodes.len(), m.network.as_ref(), Some(workers)),
                ExecutionPlan::Parallel { .. }
            ),
            "{label}: expected a parallel plan at {workers} workers"
        );
        let parallel = m.run_with_parallelism(Some(workers));
        assert_eq!(
            parallel, sequential,
            "{label}: parallel run diverged at {workers} workers"
        );
    }
}

#[test]
fn cluster_two_tier_is_bit_identical_under_every_routing_policy() {
    for policy in RoutingPolicyKind::all() {
        assert_cluster_identical(&format!("two-tier/{policy:?}"), || {
            ClusterMember::homogeneous(
                &base(ServerConfig::c_pc1a, 17),
                8,
                policy,
                WorkloadSpec::memcached_etc(),
                60_000.0,
            )
            .with_network(two_tier())
        });
    }
}

#[test]
fn cluster_fat_tree_is_bit_identical_across_platforms() {
    for (name, platform) in [
        ("shallow", ServerConfig::c_shallow as fn() -> ServerConfig),
        ("deep", ServerConfig::c_deep),
        ("pc1a", ServerConfig::c_pc1a),
    ] {
        assert_cluster_identical(&format!("fat-tree/{name}"), || {
            ClusterMember::homogeneous(
                &base(platform, 23),
                8,
                RoutingPolicyKind::JoinShortestQueue,
                WorkloadSpec::memcached_etc(),
                80_000.0,
            )
            .with_network(fat_tree())
        });
    }
}

#[test]
fn cluster_survives_uneven_partitions_and_kafka_tails() {
    // 6 nodes over {2, 4, 8} workers: worker 0 owns more nodes than the
    // rest (2 workers), some workers own nothing (8 workers).
    assert_cluster_identical("two-tier/kafka-6-nodes", || {
        ClusterMember::homogeneous(
            &base(ServerConfig::c_deep, 41),
            6,
            RoutingPolicyKind::PowerAware,
            WorkloadSpec::kafka(),
            9_000.0,
        )
        .with_network(two_tier())
    });
}

#[test]
fn cluster_high_load_same_nanosecond_ties_stay_bit_identical() {
    // Regression: at 20k req/s per node over 20 ms, service completions
    // routinely collide with routing instants on the same integer
    // nanosecond. The sequential queue breaks those ties by insertion order
    // (a completion scheduled *before* the arrival was inserted dispatches
    // first, so JSQ sees the decremented queue depth); the first driver cut
    // replayed every hub instant ahead of tied local events and diverged
    // here. Pins the `(timestamp, insertion instant)` ranking.
    assert_cluster_identical("two-tier/jsq-high-load", || {
        ClusterMember::homogeneous(
            &ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(20)),
            8,
            RoutingPolicyKind::JoinShortestQueue,
            WorkloadSpec::memcached_etc(),
            160_000.0,
        )
        .with_network(two_tier())
    });
}

#[test]
fn chain_two_tier_is_bit_identical_under_routing_policies() {
    for policy in [
        RoutingPolicyKind::Random,
        RoutingPolicyKind::JoinShortestQueue,
        RoutingPolicyKind::PowerAware,
    ] {
        assert_chain_identical(&format!("chain/two-tier/{policy:?}"), || {
            ChainMember::homogeneous(
                &base(ServerConfig::c_pc1a, 29),
                8,
                policy,
                RequestGraph::memcached_fanout(4),
                4_000.0,
            )
            .with_network(two_tier())
        });
    }
}

#[test]
fn chain_fat_tree_linear_is_bit_identical() {
    assert_chain_identical("chain/fat-tree/linear", || {
        ChainMember::homogeneous(
            &base(ServerConfig::c_shallow, 31),
            8,
            RoutingPolicyKind::RoundRobin,
            RequestGraph::memcached_fanout(8),
            2_500.0,
        )
        .with_network(fat_tree())
    });
}

#[test]
fn zero_lookahead_topologies_fall_back_to_the_sequential_loop() {
    // Plan probes: every ineligible shape names its reason.
    let two_tier = two_tier();
    assert_eq!(
        execution_plan(8, None, Some(4)),
        ExecutionPlan::Sequential {
            reason: SequentialReason::NoNetwork
        }
    );
    assert_eq!(
        execution_plan(8, Some(&NetworkConfig::ideal()), Some(4)),
        ExecutionPlan::Sequential {
            reason: SequentialReason::ZeroLookahead
        }
    );
    assert_eq!(
        execution_plan(8, Some(&NetworkConfig::flat(SimDuration::ZERO)), Some(4)),
        ExecutionPlan::Sequential {
            reason: SequentialReason::ZeroLookahead
        }
    );
    assert_eq!(
        execution_plan(1, Some(&two_tier), Some(4)),
        ExecutionPlan::Sequential {
            reason: SequentialReason::SingleNode
        }
    );
    assert_eq!(
        execution_plan(8, Some(&two_tier), Some(1)),
        ExecutionPlan::Sequential {
            reason: SequentialReason::SingleWorker
        }
    );
    // And the fallback actually runs: a zero-latency fabric through
    // `run_with_parallelism` takes the sequential path and matches `run()`.
    let member = || {
        ClusterMember::homogeneous(
            &base(ServerConfig::c_pc1a, 53),
            4,
            RoutingPolicyKind::JoinShortestQueue,
            WorkloadSpec::memcached_etc(),
            30_000.0,
        )
        .with_network(NetworkConfig::ideal())
    };
    assert_eq!(member().run_with_parallelism(Some(4)), member().run());
}

#[test]
fn lookahead_epochs_clamp_at_the_measurement_horizon() {
    // A link latency that does not divide the duration: the last epoch is a
    // partial window and must still merge identically.
    let member = || {
        ClusterMember::homogeneous(
            &ServerConfig::c_pc1a()
                .with_duration(SimTime::from_nanos(9_999_700).saturating_since(SimTime::ZERO))
                .with_seed(59),
            4,
            RoutingPolicyKind::RoundRobin,
            WorkloadSpec::mysql_oltp(),
            4_000.0,
        )
        .with_network(NetworkConfig::two_tier(SimDuration::from_nanos(1_300), 2))
    };
    let sequential = member().run();
    let parallel = member().run_with_parallelism(Some(4));
    assert_eq!(parallel, sequential);
}
