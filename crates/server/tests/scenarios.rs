//! Scenario-library smoke tests: every named scenario must run under every
//! platform configuration and produce finite, plausible fleet statistics.

use apc_server::balancer::RoutingPolicyKind;
use apc_server::config::ServerConfig;
use apc_server::scenario::{ClusterScenario, Scenario};
use apc_sim::SimDuration;

/// A short window that still sees thousands of requests per member at the
/// library's rates.
const SMOKE_WINDOW: SimDuration = SimDuration::from_millis(20);

#[test]
fn every_scenario_yields_finite_stats_under_every_platform() {
    let configs = [
        ServerConfig::c_shallow(),
        ServerConfig::c_deep(),
        ServerConfig::c_pc1a(),
    ];
    for scenario in Scenario::library() {
        let scenario = scenario.with_duration(SMOKE_WINDOW);
        for base in &configs {
            let result = scenario.run(base);
            let label = format!("{} under {}", result.scenario, result.config_name);
            assert_eq!(result.servers, scenario.servers(), "{label}");
            assert_eq!(result.fleet.servers(), scenario.servers(), "{label}");
            assert!(result.fleet.total_completed_requests() > 0, "{label}");
            let throughput = result.fleet.aggregate_throughput();
            assert!(throughput.is_finite() && throughput > 0.0, "{label}");
            let power = result.fleet.total_power_w();
            assert!(power.is_finite() && power > 0.0, "{label}");
            let mean = result.fleet.mean_latency();
            assert!(
                mean > SimDuration::ZERO && mean < SimDuration::from_secs(1),
                "{label}: mean latency {mean}"
            );
            assert!(result.fleet.worst_p99() >= mean, "{label}");
            let residency = result.fleet.mean_pc1a_residency();
            assert!((0.0..=1.0).contains(&residency), "{label}");
            // The summary row renders without panicking and names both axes.
            let row = format!("{result}");
            assert!(row.contains(result.scenario), "{row}");
            assert!(row.contains(result.config_name), "{row}");
        }
    }
}

#[test]
fn pc1a_only_helps_where_it_should() {
    // Fleet-level sanity of the paper's headline: under the low-load sweep,
    // CPC1A draws less fleet power than Cshallow and actually uses PC1A.
    let scenario = Scenario::low_load_sweep().with_duration(SMOKE_WINDOW);
    let shallow = scenario.run(&ServerConfig::c_shallow());
    let pc1a = scenario.run(&ServerConfig::c_pc1a());
    assert!(shallow.fleet.mean_pc1a_residency() == 0.0);
    assert!(pc1a.fleet.mean_pc1a_residency() > 0.05);
    assert!(
        pc1a.fleet.power_saving_vs(&shallow.fleet) > 0.0,
        "PC1A saving {:.3}",
        pc1a.fleet.power_saving_vs(&shallow.fleet)
    );
}

/// Every named cluster scenario must run (under one platform and one
/// spreading + one packing policy to bound test time) and produce finite,
/// plausible cluster statistics — the cluster counterpart of the fleet
/// library smoke test above.
#[test]
fn every_cluster_scenario_yields_finite_stats() {
    let base = ServerConfig::c_pc1a();
    for scenario in ClusterScenario::library() {
        let scenario = scenario.with_duration(SMOKE_WINDOW);
        for policy in [RoutingPolicyKind::RoundRobin, RoutingPolicyKind::PowerAware] {
            let result = scenario.run(&base, policy);
            let label = format!("{} under {}", scenario.name, policy.name());
            assert_eq!(result.policy, policy.name(), "{label}");
            assert_eq!(result.nodes.servers(), scenario.nodes, "{label}");
            assert_eq!(result.routed.len(), scenario.nodes, "{label}");
            assert!(result.total_routed() > 0, "{label}");
            assert!(
                result.total_routed() >= result.nodes.total_completed_requests(),
                "{label}"
            );
            assert!(result.nodes.total_completed_requests() > 0, "{label}");
            let power = result.nodes.total_power_w();
            assert!(power.is_finite() && power > 0.0, "{label}");
            assert!(result.routing_imbalance() >= 1.0, "{label}");
            let idle_band = result.idle_periods_20_200us();
            assert!((0.0..=1.0).contains(&idle_band), "{label}");
        }
    }
}

#[test]
fn cluster_library_names_are_unique_and_descriptive() {
    let library = ClusterScenario::library();
    assert!(library.len() >= 3);
    let mut names: Vec<&str> = library.iter().map(|s| s.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(
        names.len(),
        library.len(),
        "duplicate cluster scenario names"
    );
    for scenario in &library {
        assert!(!scenario.description.is_empty());
        assert!(scenario.nodes > 0);
        assert!(scenario.total_rate_per_sec > 0.0);
    }
}

#[test]
fn library_names_are_unique_and_descriptive() {
    let library = Scenario::library();
    assert!(library.len() >= 4);
    let mut names: Vec<&str> = library.iter().map(|s| s.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), library.len(), "duplicate scenario names");
    for scenario in &library {
        assert!(!scenario.description.is_empty());
        assert!(scenario.servers() > 0);
    }
}
