//! Parallel fleet execution must be indistinguishable — result-wise — from
//! the sequential path.

use apc_server::config::ServerConfig;
use apc_server::fleet::{Fleet, FleetMember};
use apc_sim::SimDuration;
use apc_workloads::arrival::{PiecewiseRateArrivals, RateSegment};
use apc_workloads::spec::WorkloadSpec;

fn homogeneous_fleet(n: usize) -> Fleet {
    let config = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(30));
    Fleet::homogeneous(&config, WorkloadSpec::memcached_etc, 25_000.0, n)
}

#[test]
fn parallel_run_is_bit_identical_to_sequential() {
    let sequential = homogeneous_fleet(6).with_parallelism(1).run();
    let parallel = homogeneous_fleet(6).with_parallelism(4).run();
    assert_eq!(sequential, parallel);
}

#[test]
fn auto_parallelism_matches_sequential() {
    // No knob: `run` picks the host's available parallelism.
    let auto = homogeneous_fleet(4).run();
    let sequential = homogeneous_fleet(4).run_sequential();
    assert_eq!(auto, sequential);
}

#[test]
fn oversubscribed_worker_pool_is_harmless() {
    // More workers than members: the extra workers find the queue drained.
    let wide = homogeneous_fleet(3).with_parallelism(16).run();
    let narrow = homogeneous_fleet(3).with_parallelism(2).run();
    assert_eq!(wide, narrow);
    assert_eq!(wide.servers(), 3);
}

#[test]
fn heterogeneous_members_keep_insertion_order() {
    let build = || {
        let duration = SimDuration::from_millis(20);
        let mut fleet = Fleet::new();
        fleet.push(FleetMember::new(
            ServerConfig::c_pc1a().with_duration(duration).with_seed(11),
            WorkloadSpec::memcached_etc(),
            40_000.0,
        ));
        fleet.push(FleetMember::new(
            ServerConfig::c_deep().with_duration(duration).with_seed(22),
            WorkloadSpec::kafka(),
            8_000.0,
        ));
        fleet.push(
            FleetMember::new(
                ServerConfig::c_shallow()
                    .with_duration(duration)
                    .with_seed(33),
                WorkloadSpec::mysql_oltp(),
                800.0,
            )
            .with_arrival_process(Box::new(PiecewiseRateArrivals::new(
                vec![
                    RateSegment::new(SimDuration::from_millis(5), 400.0),
                    RateSegment::new(SimDuration::from_millis(5), 1_200.0),
                ],
                true,
            ))),
        );
        fleet
    };
    let parallel = build().with_parallelism(3).run();
    let sequential = build().with_parallelism(1).run();
    assert_eq!(parallel, sequential);
    // Per-slot identity: the scheduler may finish members in any order, but
    // slot i always holds member i.
    let workloads: Vec<&str> = parallel.runs.iter().map(|r| r.workload).collect();
    assert_eq!(workloads, ["memcached", "kafka", "mysql"]);
    let configs: Vec<&str> = parallel.runs.iter().map(|r| r.config_name).collect();
    assert_eq!(configs, ["CPC1A", "Cdeep", "Cshallow"]);
}

#[test]
fn fleet_display_summarises_members_and_totals() {
    let result = homogeneous_fleet(2).run();
    let rendered = format!("{result}");
    assert!(rendered.contains("server   0"), "{rendered}");
    assert!(rendered.contains("server   1"), "{rendered}");
    assert!(rendered.contains("fleet     : 2 servers"), "{rendered}");
}
