//! Behavioural and determinism tests of the request-chain layer: fan-out
//! accounting, wait-for-all join semantics, bit-identical results across
//! worker-pool configurations, and the predicted-idle regression the
//! fan-out traffic class exposed.

use apc_pmu::governor::IdleGovernor;
use apc_server::balancer::RoutingPolicyKind;
use apc_server::chain::{run_chain_experiment, ChainFleet, ChainMember, RequestGraph};
use apc_server::components::state::ServerState;
use apc_server::config::ServerConfig;
use apc_server::scenario::ChainScenario;
use apc_sim::{SimDuration, SimTime};
use apc_soc::cstate::CoreCState;
use apc_workloads::chain::TierService;

fn quick_base(platform: ServerConfig) -> ServerConfig {
    platform.with_duration(SimDuration::from_millis(20))
}

#[test]
fn fanout_chains_complete_and_account_exactly() {
    let result = run_chain_experiment(
        &quick_base(ServerConfig::c_pc1a()),
        4,
        RoutingPolicyKind::JoinShortestQueue,
        RequestGraph::memcached_fanout(4),
        5_000.0,
    );
    assert_eq!(result.nodes.servers(), 4);
    assert!(result.chains_completed > 20, "{}", result.chains_completed);
    assert!(result.chains_started >= result.chains_completed);
    // Routed-RPC census: completed chains issued all 5 RPCs; chains still in
    // flight at the horizon issued at least the frontend.
    let total = result.total_routed();
    assert!(total >= result.chains_completed * 5, "routed {total}");
    assert!(total <= result.chains_started * 5, "routed {total}");
    // The join waits for the slowest leaf: end-to-end dominates the
    // straggler gap, and percentiles are ordered.
    assert!(result.chain_latency.p999 >= result.chain_latency.p99);
    assert!(result.chain_latency.p99 >= result.chain_latency.p50);
    assert!(result.chain_latency.p99 >= result.straggler.p99);
    assert_eq!(result.straggler.count as u64, {
        // One straggler sample per joined fan-out tier (the graph has one).
        result.chains_completed
    });
    // Per-node telemetry saw the chain RPCs as ordinary client requests.
    let completed_rpcs: u64 = result.nodes.runs.iter().map(|r| r.completed_requests).sum();
    assert!(completed_rpcs >= result.chains_completed * 5);
    assert!(result.nodes.total_power_w() > 0.0);
}

#[test]
fn linear_chains_have_no_straggler_samples() {
    let graph = RequestGraph::linear(vec![
        TierService::frontend(),
        TierService::memcached_leaf(),
        TierService::memcached_leaf(),
    ]);
    let result = run_chain_experiment(
        &quick_base(ServerConfig::c_pc1a()),
        2,
        RoutingPolicyKind::RoundRobin,
        graph,
        2_000.0,
    );
    assert!(result.chains_completed > 0);
    assert_eq!(result.straggler.count, 0, "linear chains never fan out");
    assert_eq!(result.straggler.p999, SimDuration::ZERO);
}

#[test]
fn chain_runs_are_exactly_reproducible() {
    let member = || {
        ChainMember::homogeneous(
            &quick_base(ServerConfig::c_pc1a()).with_seed(11),
            4,
            RoutingPolicyKind::PowerAware,
            RequestGraph::memcached_fanout(4),
            4_000.0,
        )
    };
    let a = member().run();
    let b = member().run();
    assert_eq!(a, b, "same seed must be bit-identical");
    let reseeded = ChainMember {
        seed: 12,
        ..member()
    }
    .run();
    assert_ne!(a, reseeded, "different cluster seeds diverge");
}

#[test]
fn chain_fleet_parallel_matches_sequential_bit_for_bit() {
    let build = || {
        let mut fleet = ChainFleet::new();
        for (platform, rate) in [
            (ServerConfig::c_shallow(), 3_000.0),
            (ServerConfig::c_deep(), 3_000.0),
            (ServerConfig::c_pc1a(), 5_000.0),
        ] {
            fleet.push(ChainMember::homogeneous(
                &quick_base(platform),
                4,
                RoutingPolicyKind::JoinShortestQueue,
                RequestGraph::memcached_fanout(4),
                rate,
            ));
        }
        fleet
    };
    // Exercise the pool even on single-core hosts by forcing 8 workers.
    let parallel = build().with_parallelism(8).run();
    let sequential = build().run_sequential();
    assert_eq!(parallel, sequential);
}

#[test]
fn chain_scenarios_run_under_every_platform() {
    let scenario = ChainScenario::mesh_8_fanout4().with_duration(SimDuration::from_millis(10));
    for platform in [
        ServerConfig::c_shallow(),
        ServerConfig::c_deep(),
        ServerConfig::c_pc1a(),
    ] {
        let result = scenario.run(&platform, RoutingPolicyKind::JoinShortestQueue);
        assert_eq!(result.nodes.servers(), 8);
        assert!(result.chains_completed > 0, "{}", platform.platform.name);
    }
    assert_eq!(ChainScenario::library().len(), 2);
    assert!(ChainScenario::library()
        .iter()
        .all(|s| s.graph.has_fanout()));
}

/// Regression (predicted-idle plumbing): a core going idle while a fan-out
/// sibling's request sits in the NIC coalescing buffer must not pick CC6 —
/// the delivery interrupt is armed and known-imminent, so the governor's
/// predicted-idle bound has to cap at the delivery time. Before the shared
/// bound, `Cdeep` paid a CC6 wake on exactly this pattern (the arrival path
/// deposited without informing the governor).
#[test]
fn armed_nic_delivery_bounds_the_predicted_idle() {
    let config = ServerConfig::c_deep();
    let governor = IdleGovernor::new(&config.platform);
    let mut state = ServerState::new(config);
    let now = SimTime::from_micros(100);
    // No pending background timer: without the NIC bound the prediction is
    // unbounded and a Cdeep governor would take the deepest state.
    state.sched.next_background_at[0] = SimTime::MAX;
    assert_eq!(
        governor.select(state.predicted_idle_bound(0, now)),
        governor.select_unbounded(),
        "no known events: unbounded choice (CC6 under Cdeep)"
    );
    assert_eq!(governor.select_unbounded(), CoreCState::CC6);
    // A sibling's request was just deposited: delivery fires one coalescing
    // window (30 us) out, far below CC6's target residency.
    state.nic.next_deliver_at = now + state.config.nic_coalescing;
    let bounded = governor.select(state.predicted_idle_bound(0, now));
    assert_ne!(
        bounded,
        CoreCState::CC6,
        "a known-imminent delivery must veto CC6"
    );
    // The bound is the min over every known event: an earlier background
    // timer still wins.
    state.sched.next_background_at[0] = now + SimDuration::from_micros(4);
    assert_eq!(
        state.predicted_idle_bound(0, now),
        SimDuration::from_micros(4)
    );
    // Delivery fired and nothing is armed: the bound relaxes again.
    state.nic.next_deliver_at = SimTime::MAX;
    state.sched.next_background_at[0] = SimTime::MAX;
    assert_eq!(
        governor.select(state.predicted_idle_bound(0, now)),
        CoreCState::CC6
    );
}

/// The tail-latency story the chain layer exists to show: under fan-out,
/// `Cdeep`'s wake latency compounds at the join and widens the end-to-end
/// tail, while `CPC1A` holds a `Cshallow`-class tail at lower power.
#[test]
fn cdeep_widens_the_fanout_tail_cpc1a_holds_it() {
    let scenario = ChainScenario::mesh_8_fanout4().with_duration(SimDuration::from_millis(50));
    let shallow = scenario.run(
        &ServerConfig::c_shallow(),
        RoutingPolicyKind::JoinShortestQueue,
    );
    let deep = scenario.run(
        &ServerConfig::c_deep(),
        RoutingPolicyKind::JoinShortestQueue,
    );
    let pc1a = scenario.run(
        &ServerConfig::c_pc1a(),
        RoutingPolicyKind::JoinShortestQueue,
    );
    assert!(
        deep.chain_latency.p999 > shallow.chain_latency.p999,
        "deep {} vs shallow {}",
        deep.chain_latency.p999,
        shallow.chain_latency.p999
    );
    // CPC1A: tail comparable to Cshallow (within 10 %), power strictly lower.
    let shallow_p999 = shallow.chain_latency.p999.as_nanos() as f64;
    let pc1a_p999 = pc1a.chain_latency.p999.as_nanos() as f64;
    assert!(
        pc1a_p999 <= shallow_p999 * 1.10,
        "pc1a p999 {} vs shallow {}",
        pc1a.chain_latency.p999,
        shallow.chain_latency.p999
    );
    assert!(
        pc1a.nodes.total_power_w() < shallow.nodes.total_power_w(),
        "pc1a {} W vs shallow {} W",
        pc1a.nodes.total_power_w(),
        shallow.nodes.total_power_w()
    );
}
