//! Behavioural tests of the full-system simulation, carried over from the
//! pre-refactor monolithic event loop and extended with component-dispatch
//! checks. These pin the paper-level results (power savings, latency
//! impact, residency trends) that every figure depends on.

use apc_server::config::ServerConfig;
use apc_server::result::RunResult;
use apc_server::sim::run_experiment;
use apc_sim::SimDuration;
use apc_workloads::spec::WorkloadSpec;

fn quick(config: ServerConfig, rate: f64) -> RunResult {
    run_experiment(
        config.with_duration(SimDuration::from_millis(200)),
        WorkloadSpec::memcached_etc(),
        rate,
    )
}

#[test]
fn cshallow_run_completes_requests_and_tracks_power() {
    let r = quick(ServerConfig::c_shallow(), 20_000.0);
    assert!(
        r.completed_requests > 3_000,
        "completed {}",
        r.completed_requests
    );
    assert!(r.latency.mean >= SimDuration::from_micros(117));
    assert!(r.latency.mean <= SimDuration::from_micros(400));
    // No package savings: power close to the 44 W idle floor plus some
    // core activity, never below it.
    assert!(
        r.avg_soc_power.as_f64() >= 43.0,
        "power {}",
        r.avg_soc_power
    );
    assert!(
        r.avg_soc_power.as_f64() <= 60.0,
        "power {}",
        r.avg_soc_power
    );
    assert_eq!(r.pc1a_transitions, 0);
    assert_eq!(r.pc6_transitions, 0);
    assert!(
        r.all_idle_fraction > 0.1,
        "all idle {}",
        r.all_idle_fraction
    );
    assert!(r.cpu_utilization > 0.01 && r.cpu_utilization < 0.2);
    assert_eq!(r.config_name, "Cshallow");
}

#[test]
fn cpc1a_enters_pc1a_and_saves_power() {
    let base = quick(ServerConfig::c_shallow(), 20_000.0);
    let apc = quick(ServerConfig::c_pc1a(), 20_000.0);
    assert!(
        apc.pc1a_transitions > 10,
        "transitions {}",
        apc.pc1a_transitions
    );
    assert!(
        apc.pc1a_residency > 0.05,
        "residency {}",
        apc.pc1a_residency
    );
    let saving = apc.power_saving_vs(&base);
    assert!(saving > 0.05, "saving {saving}");
    // Latency impact is tiny.
    let overhead = apc.latency_overhead_vs(&base);
    assert!(overhead.abs() < 0.02, "overhead {overhead}");
}

#[test]
fn idle_server_saves_about_41_percent_with_pc1a() {
    let mut shallow_cfg = ServerConfig::c_shallow().with_duration(SimDuration::from_millis(100));
    shallow_cfg.noise = None;
    let mut apc_cfg = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(100));
    apc_cfg.noise = None;
    // Effectively no load: 1 request per second.
    let base = run_experiment(shallow_cfg, WorkloadSpec::memcached_etc(), 1.0);
    let apc = run_experiment(apc_cfg, WorkloadSpec::memcached_etc(), 1.0);
    let saving = apc.power_saving_vs(&base);
    assert!(
        (saving - 0.41).abs() < 0.05,
        "idle saving {saving} should be ~0.41"
    );
    assert!(
        apc.pc1a_residency > 0.95,
        "residency {}",
        apc.pc1a_residency
    );
}

#[test]
fn cdeep_has_higher_latency_than_cshallow() {
    let shallow = quick(ServerConfig::c_shallow(), 20_000.0);
    let deep = quick(ServerConfig::c_deep(), 20_000.0);
    assert!(
        deep.latency.mean > shallow.latency.mean,
        "deep {} vs shallow {}",
        deep.latency.mean,
        shallow.latency.mean
    );
    // Deep C-states save power relative to the shallow baseline.
    assert!(deep.avg_soc_power < shallow.avg_soc_power);
}

#[test]
fn pc1a_residency_decreases_with_load() {
    let low = quick(ServerConfig::c_pc1a(), 4_000.0);
    let high = quick(ServerConfig::c_pc1a(), 100_000.0);
    assert!(
        low.pc1a_residency > high.pc1a_residency,
        "low {} high {}",
        low.pc1a_residency,
        high.pc1a_residency
    );
    assert!(
        low.pc1a_residency > 0.4,
        "low-load residency {}",
        low.pc1a_residency
    );
}

#[test]
fn throughput_tracks_offered_load() {
    let r = quick(ServerConfig::c_shallow(), 50_000.0);
    let achieved = r.throughput();
    assert!(
        (achieved - 50_000.0).abs() / 50_000.0 < 0.15,
        "achieved {achieved}"
    );
}

/// Golden pin: exact pre-refactor results for one seed/rate under every
/// platform, captured from the monolithic-era `ServerSimulation` (PR 2
/// tree). The 1-node-cluster regression in `tests/cluster.rs` only proves
/// cluster ≡ standalone on the *shared* node code path; these literals
/// protect the shared path itself, so any event-ordering or accounting
/// change that shifts results — even uniformly — fails loudly instead of
/// silently breaking comparability with previously published numbers.
/// (If such a change is ever intentional, re-capture these literals and say
/// so in the commit.)
#[test]
fn golden_results_match_pre_refactor_capture() {
    // p99 literals re-captured when the latency recorder moved to the
    // quantile sketch: percentiles are sketch estimates now (<= 1 %
    // relative error, clamped to the exact min/max); completed counts and
    // means are exact and did not change.
    let golden = [
        // (config, completed, mean ns, p99 ns, soc W, pc1a, pc6, idle periods, pc1a residency)
        (
            ServerConfig::c_shallow(),
            2792u64,
            160_938i64,
            226_468i64,
            50.18249155799904f64,
            0u64,
            0u64,
            478u64,
            0.0f64,
        ),
        // Cdeep re-captured when the idle governor's predicted-idle bound
        // gained the NIC's armed coalesced-delivery time: a core idling
        // inside the coalescing window no longer picks CC6 against a
        // known-imminent interrupt, so Cdeep serves with fewer CC6 wake
        // penalties (mean 199.2 -> 179.1 us, p99 328.6 -> 319.9 us) and
        // slightly lower SoC power (49.06 -> 47.70 W: the avoided wake
        // transitions and shorter busy tails outweigh the lost CC6
        // residency at this load). Cshallow/CPC1A (CC1-only governors) are
        // bit-identical to the pre-refactor capture.
        (
            ServerConfig::c_deep(),
            2791,
            179_053,
            318_180,
            47.701750616199554,
            0,
            2,
            175,
            0.0,
        ),
        (
            ServerConfig::c_pc1a(),
            2792,
            160_996,
            226_468,
            43.19331979119917,
            632,
            0,
            478,
            0.42414232,
        ),
    ];
    for (config, completed, mean, p99, soc_w, pc1a, pc6, periods, residency) in golden {
        let r = run_experiment(
            config
                .with_duration(SimDuration::from_millis(50))
                .with_seed(7),
            WorkloadSpec::memcached_etc(),
            60_000.0,
        );
        let name = r.config_name;
        assert_eq!(r.completed_requests, completed, "{name}");
        assert_eq!(
            r.latency.mean,
            SimDuration::from_nanos(mean as u64),
            "{name}"
        );
        assert_eq!(r.latency.p99, SimDuration::from_nanos(p99 as u64), "{name}");
        assert_eq!(r.avg_soc_power.as_f64(), soc_w, "{name}");
        assert_eq!(r.pc1a_transitions, pc1a, "{name}");
        assert_eq!(r.pc6_transitions, pc6, "{name}");
        assert_eq!(r.idle_periods, periods, "{name}");
        assert_eq!(r.pc1a_residency, residency, "{name}");
    }
}

#[test]
fn power_trace_records_samples_when_enabled() {
    let config = ServerConfig::c_pc1a()
        .with_duration(SimDuration::from_millis(20))
        .with_power_trace(SimDuration::from_millis(1));
    let loadgen = apc_workloads::loadgen::LoadGenerator::new(
        WorkloadSpec::memcached_etc(),
        10_000.0,
        config.seed,
    );
    let sim = apc_server::sim::ServerSimulation::new(config, loadgen);
    assert!(sim.state().telemetry.power_trace.is_empty());
    let (result, state) = sim.run_into_state();
    assert!(result.completed_requests > 0);
    // 20 ms at a 1 ms sampling interval: expect on the order of 20 samples.
    assert!(
        state.telemetry.power_trace.len() >= 15,
        "trace has {} samples",
        state.telemetry.power_trace.len()
    );
    assert!(state
        .telemetry
        .power_trace
        .iter()
        .all(|(_, w)| w.as_f64() > 0.0));
}

#[test]
fn zero_power_trace_interval_is_treated_as_disabled() {
    // A zero sampling interval would re-arm PowerSample at the same instant
    // forever; it must degrade to "trace off", not hang the event loop.
    let config = ServerConfig::c_shallow()
        .with_duration(SimDuration::from_millis(5))
        .with_power_trace(SimDuration::ZERO);
    let loadgen = apc_workloads::loadgen::LoadGenerator::new(
        WorkloadSpec::memcached_etc(),
        1_000.0,
        config.seed,
    );
    let (result, state) = apc_server::sim::ServerSimulation::new(config, loadgen).run_into_state();
    assert!(state.telemetry.power_trace.is_empty());
    assert!(result.finished_at == apc_sim::SimTime::from_millis(5));
}
