//! Differential conformance suite for the network fabric.
//!
//! The load-bearing contract of `apc-network`: a fabric whose every
//! transmission takes zero wire time — [`NetworkConfig::ideal`] (flat, zero
//! latency, infinite bandwidth), or any topology whose links are free — is
//! **bit-identical** to running with no fabric at all. Not statistically
//! close: the same event sequence, the same RNG draws, the same FIFO order,
//! and therefore exactly equal results op for op — request outcomes
//! (latency summaries, completion counts), power and energy, package
//! residency, and the routing census.
//!
//! Every comparison here strips only the `network` stats field (the one
//! field the fabric-less run cannot have) and then uses the results' exact
//! `PartialEq` — the same equality the determinism suites pin — across all
//! three platform configurations, every routing policy, and the chain
//! scenario library. No golden was re-captured for the fabric: the
//! pre-existing pinned exports in `crates/analysis/tests/` run fabric-less
//! and still pass unchanged.

use apc_network::NetworkConfig;
use apc_server::balancer::RoutingPolicyKind;
use apc_server::chain::{ChainMember, ChainResult};
use apc_server::cluster::{ClusterMember, ClusterResult};
use apc_server::config::ServerConfig;
use apc_server::scenario::ChainScenario;
use apc_sim::SimDuration;
use apc_workloads::spec::WorkloadSpec;

fn platforms() -> [ServerConfig; 3] {
    [
        ServerConfig::c_shallow(),
        ServerConfig::c_deep(),
        ServerConfig::c_pc1a(),
    ]
}

/// Drops the fabric's stats (present on fabric runs only, by construction)
/// after asserting the fabric really ran, so the remaining fields compare
/// exactly against the fabric-less baseline.
fn strip_cluster(mut result: ClusterResult) -> ClusterResult {
    let stats = result.network.take().expect("fabric run must export stats");
    assert!(stats.messages > 0, "fabric saw no traffic");
    assert!(
        stats.total_wire_delay.is_zero(),
        "instantaneous fabric accumulated wire delay"
    );
    result
}

fn strip_chain(mut result: ChainResult) -> ChainResult {
    let stats = result.network.take().expect("fabric run must export stats");
    assert!(stats.messages > 0, "fabric saw no traffic");
    assert!(
        stats.total_wire_delay.is_zero(),
        "instantaneous fabric accumulated wire delay"
    );
    result
}

/// The headline contract: the ideal fabric replays the fabric-less cluster
/// bit-for-bit under every platform x routing-policy combination.
#[test]
fn ideal_fabric_matches_fabricless_cluster_on_every_platform_and_policy() {
    for platform in platforms() {
        let base = platform.with_duration(SimDuration::from_millis(2));
        for policy in RoutingPolicyKind::all() {
            let member = || {
                ClusterMember::homogeneous(
                    &base,
                    4,
                    policy,
                    WorkloadSpec::memcached_etc(),
                    40_000.0,
                )
            };
            let baseline = member().run();
            let fabric = member().with_network(NetworkConfig::ideal()).run();
            let stats = fabric.network.clone().expect("fabric stats");
            assert_eq!(
                stats.messages,
                baseline.total_routed(),
                "every routed request crosses the fabric exactly once"
            );
            assert_eq!(
                strip_cluster(fabric),
                baseline,
                "platform {} policy {policy:?} diverged under the ideal fabric",
                base.platform.name,
            );
        }
    }
}

/// Zero wire time is what matters, not the flat shape: zero-latency
/// two-tier and fat-tree fabrics (infinite bandwidth) are instantaneous
/// too, and must also be bit-identical.
#[test]
fn zero_latency_nonflat_topologies_match_fabricless_cluster() {
    let base = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(2));
    let member = || {
        ClusterMember::homogeneous(
            &base,
            4,
            RoutingPolicyKind::JoinShortestQueue,
            WorkloadSpec::memcached_etc(),
            40_000.0,
        )
    };
    let baseline = member().run();
    for config in [
        NetworkConfig::two_tier(SimDuration::ZERO, 2),
        NetworkConfig::fat_tree(SimDuration::ZERO, 2, 2, 4.0),
        // Finite bandwidth with an empty payload serializes in zero time.
        NetworkConfig::flat(SimDuration::ZERO).with_bandwidth(1),
    ] {
        assert!(config.is_instantaneous());
        let fabric = member().with_network(config).run();
        assert_eq!(strip_cluster(fabric), baseline, "{config:?} diverged");
    }
}

/// The chain scenarios: fan-out RPCs *and* leaf-completion reports both
/// cross the fabric, so the chain path exercises both transmission
/// directions. Bit-identical on every platform for both the spreading and
/// the packing policy.
#[test]
fn ideal_fabric_matches_fabricless_chain_scenarios() {
    for scenario in ChainScenario::library() {
        let scenario = scenario.with_duration(SimDuration::from_millis(2));
        for platform in platforms() {
            for policy in [
                RoutingPolicyKind::JoinShortestQueue,
                RoutingPolicyKind::PowerAware,
            ] {
                let baseline = scenario.run(&platform, policy);
                // Replicate ChainScenario::run exactly, plus the fabric.
                let base = platform
                    .clone()
                    .with_duration(scenario.duration)
                    .with_seed(scenario.seed);
                let fabric = ChainMember::homogeneous(
                    &base,
                    scenario.nodes,
                    policy,
                    scenario.graph.clone(),
                    scenario.chains_per_sec,
                )
                .with_network(NetworkConfig::ideal())
                .run();
                let stats = fabric.network.clone().expect("fabric stats");
                assert!(
                    stats.messages >= baseline.total_routed(),
                    "every RPC crosses the fabric, plus one report per join"
                );
                assert_eq!(
                    strip_chain(fabric),
                    baseline,
                    "scenario {} platform {} policy {policy:?} diverged",
                    scenario.name,
                    base.platform.name,
                );
            }
        }
    }
}

/// Sanity in the other direction: a fabric with real wire latency is *not*
/// a no-op — end-to-end chain latency grows and the stats record the
/// traffic — so the suite cannot pass vacuously.
#[test]
fn nonzero_latency_fabric_actually_delays_chains() {
    let base = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(2));
    let member = || {
        ChainMember::homogeneous(
            &base,
            4,
            RoutingPolicyKind::JoinShortestQueue,
            apc_server::chain::RequestGraph::memcached_fanout(4),
            4_000.0,
        )
    };
    let baseline = member().run();
    let config = NetworkConfig::two_tier(SimDuration::from_micros(5), 2);
    assert!(!config.is_instantaneous());
    let wired = member().with_network(config).run();
    let stats = wired.network.clone().expect("fabric stats");
    assert!(stats.messages > 0);
    assert!(!stats.total_wire_delay.is_zero());
    assert!(!stats.max_wire_delay.is_zero());
    assert!(
        wired.chain_latency.p50 > baseline.chain_latency.p50,
        "5us links must lift the median chain latency ({} vs {})",
        wired.chain_latency.p50,
        baseline.chain_latency.p50
    );
}
