//! Deterministic random number generation.
//!
//! Every stochastic component of the reproduction (arrival processes, service
//! time draws, key popularity) pulls randomness from a [`SimRng`] seeded from
//! an experiment-level seed, so that every table and figure is exactly
//! reproducible run-to-run.
//!
//! The generator is a self-contained xoshiro256++ implementation (the same
//! algorithm `rand::rngs::SmallRng` uses on 64-bit targets), so the crate has
//! no external dependencies and builds in fully offline environments.

/// A small, fast, deterministic RNG used throughout the simulator.
///
/// Implements xoshiro256++ seeded through a SplitMix64 expansion of a 64-bit
/// seed, plus the handful of draw helpers the simulator needs. Independent
/// sub-streams for different components are derived with [`SimRng::fork`],
/// which hashes a label into the parent seed so that adding a new consumer
/// does not perturb existing streams.
///
/// # Examples
///
/// ```
/// use apc_sim::rng::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut arrivals = a.fork("arrivals");
/// let mut service = a.fork("service");
/// // Forked streams are independent of each other and of the parent.
/// assert_ne!(arrivals.next_u64(), service.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step, used to expand a 64-bit seed into the xoshiro state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let state = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        SimRng { state, seed }
    }

    /// The seed this generator was created from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for a named sub-component.
    ///
    /// The derivation depends only on the parent seed and the label, not on
    /// how much randomness the parent has already consumed: the label is
    /// FNV-1a-hashed and mixed into the parent seed, and the result seeds a
    /// fresh generator. Adding a new consumer therefore never perturbs
    /// existing streams.
    ///
    /// # Seed-derivation scheme (canonical reference)
    ///
    /// Every deterministic stream in the simulator is derived from an
    /// experiment-level seed through this method, under the following label
    /// conventions (new consumers should follow the same shape):
    ///
    /// | consumer | label | forked from |
    /// |---|---|---|
    /// | server-node component | its unprefixed label (`"nic"`, `"core 3"`) | the node's seed (a standalone server's simulation root) |
    /// | node bootstrap draws | `"bootstrap"` | the node's seed |
    /// | load generator | `"loadgen"` | the server's (or cluster's) seed |
    /// | fleet / scenario member `i` | `"server i"` | the fleet or scenario seed |
    /// | cluster node `i` | `"server i"` | the cluster seed |
    /// | cluster balancer | `"balancer"` | the cluster seed (its simulation root) |
    ///
    /// Node components are registered under name prefixes when several nodes
    /// share one simulation, but their streams are forked by the
    /// *unprefixed* label from the *node seed* (see
    /// `Simulation::add_component_with_stream`), so a node embedded in a
    /// cluster draws exactly what a standalone server with the same seed
    /// would.
    ///
    /// Because each member/component seed is a pure function of
    /// `(parent seed, label)`, fleets are exactly reproducible run-to-run,
    /// members are pairwise independent, and running members in parallel
    /// cannot change any stream — the property the parallel fleet runner's
    /// bit-identical guarantee rests on.
    #[must_use]
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::from_seed(self.seed ^ h.rotate_left(17))
    }

    /// The next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[lo, hi)`. Returns `lo` when the range is empty or
    /// degenerate.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        // NaN bounds compare as "not greater" and fall back to `lo`.
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return lo;
        }
        lo + self.uniform() * (hi - lo)
    }

    /// A uniform integer in `[0, n)` (unbiased, via rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        let n = n as u64;
        // Widening-multiply trick (Lemire); reject the biased zone.
        let zone = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            if (m as u64) >= zone {
                return (m >> 64) as usize;
            }
        }
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform() < p
    }

    /// A standard normal (mean 0, unit variance) draw using Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// An exponentially distributed draw with the given mean.
    ///
    /// Returns `0.0` for non-positive or non-finite means.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if !mean.is_finite() || mean <= 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// A Poisson-distributed draw with the given mean (Knuth's algorithm for
    /// small means, normal approximation above 64).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if !mean.is_finite() || mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let v = mean + mean.sqrt() * self.standard_normal();
            return v.max(0.0).round() as u64;
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_stable_and_label_sensitive() {
        let parent = SimRng::from_seed(99);
        let f1 = parent.fork("arrivals");
        let f2 = parent.fork("arrivals");
        let f3 = parent.fork("service");
        assert_eq!(f1.seed(), f2.seed());
        assert_ne!(f1.seed(), f3.seed());
        assert_ne!(f1.seed(), parent.seed());
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn index_is_unbiased_and_in_range() {
        let mut rng = SimRng::from_seed(11);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.index(7)] += 1;
        }
        for &c in &counts {
            let rate = f64::from(c) / 70_000.0;
            assert!((rate - 1.0 / 7.0).abs() < 0.01, "rate {rate}");
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::from_seed(4);
        let n = 50_000;
        let mean = 25.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / f64::from(n);
        assert!(
            (observed - mean).abs() / mean < 0.05,
            "observed mean {observed} too far from {mean}"
        );
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = SimRng::from_seed(5);
        for &mean in &[0.5, 4.0, 30.0, 200.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| rng.poisson(mean)).sum();
            let observed = sum as f64 / f64::from(n);
            assert!(
                (observed - mean).abs() / mean < 0.1,
                "poisson({mean}) observed {observed}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn chance_respects_probability() {
        let mut rng = SimRng::from_seed(6);
        let hits = (0..20_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02);
        assert!(!rng.chance(-1.0)); // clamped to 0.0 => never true
        assert!(rng.chance(2.0)); // clamped to 1.0 => always true
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = SimRng::from_seed(8);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
