//! Deterministic random number generation.
//!
//! Every stochastic component of the reproduction (arrival processes, service
//! time draws, key popularity) pulls randomness from a [`SimRng`] seeded from
//! an experiment-level seed, so that every table and figure is exactly
//! reproducible run-to-run.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A small, fast, deterministic RNG used throughout the simulator.
///
/// Wraps [`rand::rngs::SmallRng`] and adds the handful of draw helpers the
/// simulator needs. Independent sub-streams for different components are
/// derived with [`SimRng::fork`], which hashes a label into the parent seed so
/// that adding a new consumer does not perturb existing streams.
///
/// # Examples
///
/// ```
/// use apc_sim::rng::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut arrivals = a.fork("arrivals");
/// let mut service = a.fork("service");
/// // Forked streams are independent of each other and of the parent.
/// assert_ne!(arrivals.next_u64(), service.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for a named sub-component.
    ///
    /// The derivation depends only on the parent seed and the label, not on
    /// how much randomness the parent has already consumed.
    #[must_use]
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::from_seed(self.seed ^ h.rotate_left(17))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform value in `[lo, hi)`. Returns `lo` when the range is empty or
    /// degenerate.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if !(hi > lo) {
            return lo;
        }
        lo + self.uniform() * (hi - lo)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        self.inner.gen_range(0..n)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform() < p
    }

    /// A standard normal (mean 0, unit variance) draw using Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// An exponentially distributed draw with the given mean.
    ///
    /// Returns `0.0` for non-positive or non-finite means.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if !mean.is_finite() || mean <= 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// A Poisson-distributed draw with the given mean (Knuth's algorithm for
    /// small means, normal approximation above 64).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if !mean.is_finite() || mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let v = mean + mean.sqrt() * self.standard_normal();
            return v.max(0.0).round() as u64;
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_stable_and_label_sensitive() {
        let parent = SimRng::from_seed(99);
        let f1 = parent.fork("arrivals");
        let f2 = parent.fork("arrivals");
        let f3 = parent.fork("service");
        assert_eq!(f1.seed(), f2.seed());
        assert_ne!(f1.seed(), f3.seed());
        assert_ne!(f1.seed(), parent.seed());
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::from_seed(4);
        let n = 50_000;
        let mean = 25.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / f64::from(n);
        assert!(
            (observed - mean).abs() / mean < 0.05,
            "observed mean {observed} too far from {mean}"
        );
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = SimRng::from_seed(5);
        for &mean in &[0.5, 4.0, 30.0, 200.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| rng.poisson(mean)).sum();
            let observed = sum as f64 / f64::from(n);
            assert!(
                (observed - mean).abs() / mean < 0.1,
                "poisson({mean}) observed {observed}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn chance_respects_probability() {
        let mut rng = SimRng::from_seed(6);
        let hits = (0..20_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02);
        assert!(!rng.chance(-1.0) || true); // clamps, never panics
        assert!(rng.chance(2.0)); // clamped to 1.0 => always true
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = SimRng::from_seed(8);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
