//! # `apc-sim` — discrete-event simulation engine
//!
//! Foundation crate of the AgilePkgC (APC) reproduction. It provides:
//!
//! * [`time`] — nanosecond-granularity [`time::SimTime`] / [`time::SimDuration`]
//!   types used by every other crate;
//! * [`engine`] — a deterministic discrete-event [`engine::EventQueue`];
//! * [`component`] — the component framework: [`component::Simulation`]
//!   driver, [`component::EventHandler`] trait and
//!   [`component::SimulationContext`] through which registered components
//!   schedule events and draw per-component deterministic randomness;
//! * [`rng`] — seeded, forkable random number generation;
//! * [`dist`] — probability distributions for service-time and arrival models;
//! * [`stats`] — streaming statistics, percentile recording and duration
//!   histograms used to reduce simulated timelines into the paper's figures.
//!
//! # Example
//!
//! ```
//! use apc_sim::engine::EventQueue;
//! use apc_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Event {
//!     RequestArrival,
//!     CoreWakeupDone,
//! }
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::from_micros(10), Event::RequestArrival);
//! queue.schedule(SimTime::from_micros(10) + SimDuration::from_nanos(200),
//!                Event::CoreWakeupDone);
//!
//! let (t, e) = queue.pop().unwrap();
//! assert_eq!(e, Event::RequestArrival);
//! assert_eq!(t, SimTime::from_micros(10));
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod component;
pub mod dist;
pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;

pub use component::{ComponentId, EventHandler, Simulation, SimulationContext};
pub use engine::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
