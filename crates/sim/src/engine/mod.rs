//! Discrete-event scheduling primitives.
//!
//! The full-system server simulation (crate `apc-server`) is written as a
//! classic discrete-event simulation: components schedule future events into
//! an [`EventQueue`], the main loop repeatedly pops the earliest event,
//! advances the simulated clock to its timestamp and dispatches it.
//!
//! The queue is deliberately generic over the event payload so that every
//! layer (workload generators, C-state governors, package flows) can define
//! its own event enumeration while sharing the same scheduling machinery.
//!
//! # Implementations
//!
//! Two queue implementations share the same delivery contract (non-decreasing
//! timestamps, FIFO tie-break by scheduling order, O(1) cancellation,
//! causality clamping of past timestamps):
//!
//! * [`EventQueue`] — the production queue: a hierarchical timer wheel with
//!   slab-backed event entries, per-level occupancy bitmaps, an overflow heap
//!   for far-future events and batched same-timestamp dispatch. Schedule,
//!   cancel and pop are O(1) amortized and allocation-free in steady state.
//! * [`HeapEventQueue`] — the original binary-heap queue with lazy-deleted
//!   cancels, retained as the reference model for the differential test
//!   suite (`tests/event_core_differential.rs`) and as a baseline in the
//!   event-core micro-benchmarks.
//!
//! The contract is pinned bit-for-bit by the differential harness, which runs
//! both implementations in lockstep under randomized schedule / cancel /
//! causality-clamp interleavings.

pub mod heap;
pub mod partition;
mod wheel;

pub use heap::{HeapEventId, HeapEventQueue};
pub use wheel::{EventId, EventQueue, KindCounters, QueueCounters, QueueFootprint};
