//! Conservative-lookahead partitioning primitives: epoch windows, the
//! barrier the partition workers synchronize on, and the interleaved
//! per-partition event loop.
//!
//! A partitioned simulation splits one logical event loop into several
//! [`Simulation`]s that advance in lockstep through **epochs** of a fixed
//! lookahead `L`: if every cross-partition interaction is carried by an
//! event whose delay is bounded below by `L`, then during epoch
//! `[kL, (k+1)L)` no partition can affect another *within the same epoch* —
//! every partition may safely run its local events for the whole window,
//! and cross-partition messages produced in epoch `k` are exchanged at the
//! epoch boundary, landing in epoch `k + 1` or later (classic conservative
//! / bounded-lag PDES). The driver that owns the partitions (see
//! `apc-server`'s `parallel` module) is responsible for the merge being
//! deterministic — `(timestamp, scheduling order)` — so the partitioned run
//! is bit-identical to the sequential one.
//!
//! This module hosts the engine-level, payload-agnostic pieces:
//!
//! * [`EpochWindows`] — the iterator of `[start, end)` windows covering
//!   `[0, horizon)` in lookahead-sized steps;
//! * [`EpochBarrier`] — a spin-then-yield barrier for the per-epoch
//!   synchronization points (two crossings per epoch: plan published /
//!   partitions done);
//! * [`run_interleaved`] — one partition's event loop for one epoch,
//!   interleaving local dispatches with a sorted list of *foreign
//!   instants* (timestamps at which other partitions dispatched events
//!   this partition's observers would have witnessed in the sequential
//!   loop, and at which the driver samples partition state).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::component::Simulation;
use crate::time::{SimDuration, SimTime};

/// The lookahead-sized epoch windows `[start, end)` covering
/// `[SimTime::ZERO, horizon)`, last window clamped to the horizon.
///
/// An empty iterator results only from a zero horizon; a zero lookahead is
/// rejected because it admits no conservative window at all (the caller
/// must fall back to the sequential loop).
#[derive(Debug, Clone)]
pub struct EpochWindows {
    lookahead_ns: u64,
    horizon_ns: u64,
    next_start_ns: u64,
}

impl EpochWindows {
    /// Windows of length `lookahead` covering `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics on a zero lookahead — conservative partitioning is impossible
    /// without a positive lower bound on cross-partition delay.
    #[must_use]
    pub fn new(lookahead: SimDuration, horizon: SimTime) -> Self {
        assert!(
            !lookahead.is_zero(),
            "conservative partitioning needs a positive lookahead"
        );
        EpochWindows {
            lookahead_ns: lookahead.as_nanos(),
            horizon_ns: horizon.as_nanos(),
            next_start_ns: 0,
        }
    }

    /// Total number of windows the iteration will yield.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.horizon_ns.div_ceil(self.lookahead_ns)) as usize
    }

    /// `true` when the horizon is zero (no windows).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.horizon_ns == 0
    }
}

impl Iterator for EpochWindows {
    /// One `[start, end)` window.
    type Item = (SimTime, SimTime);

    fn next(&mut self) -> Option<(SimTime, SimTime)> {
        if self.next_start_ns >= self.horizon_ns {
            return None;
        }
        let start = self.next_start_ns;
        let end = start.saturating_add(self.lookahead_ns).min(self.horizon_ns);
        self.next_start_ns = end;
        Some((SimTime::from_nanos(start), SimTime::from_nanos(end)))
    }
}

/// A reusable barrier for the per-epoch synchronization points.
///
/// Epochs are short (a lookahead window is typically a handful of
/// microseconds of simulated time, a few events per partition), so the
/// barrier is crossed a great many times per run and its latency is pure
/// overhead on the critical path. Waiters therefore spin briefly — the
/// common case on a multi-core host, where the other parties arrive within
/// nanoseconds — and fall back to [`std::thread::yield_now`] so progress is
/// still made when workers outnumber cores (including the 1-CPU CI case).
///
/// Unlike [`std::sync::Barrier`], waiting never allocates, never parks
/// through a mutex, and the generation counter makes the barrier reusable
/// for back-to-back crossings without a reset.
#[derive(Debug)]
pub struct EpochBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl EpochBarrier {
    /// A barrier releasing every [`EpochBarrier::wait`] once `parties`
    /// threads have arrived.
    ///
    /// # Panics
    ///
    /// Panics when `parties` is zero.
    #[must_use]
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        EpochBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until `parties` threads (this one included) have called
    /// `wait` for the current generation, then releases them all.
    pub fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the count, then advance the generation to
            // release the spinners (in this order — a released spinner may
            // immediately re-enter `wait` for the next generation).
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            spins = spins.saturating_add(1);
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Runs one partition's event loop for one epoch: dispatches every local
/// event with timestamp below `horizon`, interleaving a sorted list of
/// foreign `instants` so the caller can replicate cross-partition observer
/// effects and sample partition state at exact sequential-loop timestamps.
///
/// Each instant is the `(timestamp, insertion instant)` key of a foreign
/// event — the key the engine queues rank same-timestamp FIFO order by.
/// `visit(shared, i)` is called exactly once per instant index, in order, at
/// the point where every local event whose key orders *before*
/// `instants[i]` has dispatched and none at-or-after it has — i.e. the
/// partition state is exactly the sequential state at the moment the foreign
/// event would have dispatched. At equal timestamps, a local event scheduled
/// at an earlier simulated instant than the foreign event was therefore
/// still runs first, exactly as the sequential queue's FIFO tie-break would
/// have ordered it; a full `(timestamp, insertion)` tie resolves in the
/// foreign event's favor, matching the driver's convention of replaying
/// hub-side emissions with [`Simulation::schedule_backdated`] ranks that
/// precede same-key local schedules. Instants at or beyond `horizon` are not
/// visited and must be re-presented next epoch.
///
/// Returns the number of local events dispatched, the partition's share of
/// the sequential loop's dispatch count.
pub fn run_interleaved<E, S>(
    sim: &mut Simulation<E, S>,
    horizon: SimTime,
    instants: &[(SimTime, SimTime)],
    mut visit: impl FnMut(&mut S, usize),
) -> u64 {
    debug_assert!(instants.windows(2).all(|w| w[0] <= w[1]));
    let mut next = 0;
    let mut dispatched = 0;
    while let Some(key) = sim.peek_key() {
        if key.0 >= horizon {
            break;
        }
        while next < instants.len() && instants[next] <= key {
            if instants[next].0 >= horizon {
                return dispatched;
            }
            visit(sim.shared_mut(), next);
            next += 1;
        }
        sim.step();
        dispatched += 1;
    }
    while next < instants.len() && instants[next].0 < horizon {
        visit(sim.shared_mut(), next);
        next += 1;
    }
    dispatched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{EventHandler, SimulationContext};

    #[test]
    fn epoch_windows_cover_the_horizon_exactly() {
        let l = SimDuration::from_micros(3);
        let horizon = SimTime::from_nanos(10_000); // 3 full + 1 short window
        let windows: Vec<_> = EpochWindows::new(l, horizon).collect();
        assert_eq!(EpochWindows::new(l, horizon).len(), 4);
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0], (SimTime::ZERO, SimTime::from_nanos(3_000)));
        assert_eq!(
            windows[3],
            (SimTime::from_nanos(9_000), SimTime::from_nanos(10_000))
        );
        // Contiguous and clamped.
        for pair in windows.windows(2) {
            assert_eq!(pair[0].1, pair[1].0);
        }
        assert!(EpochWindows::new(l, SimTime::ZERO).is_empty());
        assert_eq!(EpochWindows::new(l, SimTime::ZERO).count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let _ = EpochWindows::new(SimDuration::ZERO, SimTime::from_nanos(1));
    }

    #[test]
    fn barrier_releases_all_parties_across_generations() {
        let barrier = EpochBarrier::new(4);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        barrier.wait();
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                    }
                });
            }
            for round in 0..50 {
                barrier.wait(); // everyone entered the round
                barrier.wait(); // everyone finished the round
                assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 3);
            }
        });
    }

    /// A counter component: every event re-arms itself `step` later and
    /// increments the shared count.
    struct Ticker {
        step: SimDuration,
    }

    impl EventHandler<(), Vec<SimTime>> for Ticker {
        fn on_event(
            &mut self,
            _event: (),
            shared: &mut Vec<SimTime>,
            ctx: &mut SimulationContext<'_, ()>,
        ) {
            shared.push(ctx.now());
            ctx.emit_self(self.step, ());
        }
    }

    #[test]
    fn interleaved_run_visits_instants_between_the_right_events() {
        let mut sim: Simulation<(), Vec<SimTime>> = Simulation::new(7, Vec::new());
        let ticker = sim.add_component(
            "ticker",
            Ticker {
                step: SimDuration::from_nanos(100),
            },
        );
        sim.schedule(ticker, SimTime::from_nanos(100), ());

        // Foreign instants: one between events, one exactly *at* a local
        // event (inserted no later than it, so visited before it), one past
        // the horizon.
        let instants = [
            (SimTime::from_nanos(150), SimTime::from_nanos(150)),
            (SimTime::from_nanos(300), SimTime::from_nanos(100)),
            (SimTime::from_nanos(990), SimTime::from_nanos(900)),
        ];
        let mut visited = Vec::new();
        let dispatched = run_interleaved(
            &mut sim,
            SimTime::from_nanos(450),
            &instants,
            |shared, i| visited.push((instants[i].0, shared.len())),
        );
        // Events at 100, 200, 300, 400 dispatched; 150 visited after one
        // event, 300 visited after two (before the event at 300, which was
        // scheduled at 200 — later than the instant's insertion at 100); 990
        // is beyond the horizon and left for a later epoch.
        assert_eq!(dispatched, 4);
        assert_eq!(
            visited,
            vec![(SimTime::from_nanos(150), 1), (SimTime::from_nanos(300), 2)]
        );
        // The next epoch picks up seamlessly.
        let mut visited = Vec::new();
        let dispatched = run_interleaved(
            &mut sim,
            SimTime::from_nanos(1_000),
            &instants[2..],
            |shared, i| visited.push((instants[2 + i].0, shared.len())),
        );
        assert_eq!(dispatched, 5); // 500..900
        assert_eq!(visited, vec![(SimTime::from_nanos(990), 9)]);
    }

    #[test]
    fn instants_inserted_after_a_tied_local_event_run_after_it() {
        // A foreign instant at the same timestamp as a local event, but
        // *inserted later* than the local event was scheduled: the sequential
        // FIFO tie-break would dispatch the local event first, so the visit
        // must land after it.
        let mut sim: Simulation<(), Vec<SimTime>> = Simulation::new(7, Vec::new());
        let ticker = sim.add_component(
            "ticker",
            Ticker {
                step: SimDuration::from_nanos(100),
            },
        );
        // Local events at 100 (scheduled at 0), 200 (scheduled at 100), ...
        sim.schedule(ticker, SimTime::from_nanos(100), ());
        // Foreign event at 200 inserted at 150 > 100: local event first.
        let instants = [(SimTime::from_nanos(200), SimTime::from_nanos(150))];
        let mut visited = Vec::new();
        run_interleaved(
            &mut sim,
            SimTime::from_nanos(250),
            &instants,
            |shared, _| {
                visited.push(shared.len());
            },
        );
        assert_eq!(visited, vec![2], "visited after the tied local event");
    }

    #[test]
    fn interleaved_run_flushes_trailing_instants_only_below_horizon() {
        let mut sim: Simulation<(), Vec<SimTime>> = Simulation::new(7, Vec::new());
        let ticker = sim.add_component(
            "ticker",
            Ticker {
                step: SimDuration::from_micros(100), // far beyond the epoch
            },
        );
        sim.schedule(ticker, SimTime::from_micros(100), ());
        let instants = [
            (SimTime::from_nanos(10), SimTime::ZERO),
            (SimTime::from_nanos(20), SimTime::ZERO),
        ];
        let mut visited = 0;
        // No local events in the window: trailing instants still visited.
        let n = run_interleaved(&mut sim, SimTime::from_nanos(30), &instants, |_, _| {
            visited += 1;
        });
        assert_eq!((n, visited), (0, 2));
    }
}
