//! Hierarchical timer-wheel event queue with slab-backed entries.
//!
//! This is the production [`EventQueue`]: it replaces the binary-heap hot
//! path with a Linux-style hierarchical timer wheel. See the `engine` module
//! docs for the delivery contract and `ARCHITECTURE.md` ("Event core") for
//! the design discussion.
//!
//! Structure:
//!
//! * **Levels.** [`LEVELS`] wheel levels of [`SLOTS`] slots each; a level-0
//!   slot spans exactly one nanosecond (one timestamp), level `l` slots span
//!   `64^l` ns, so the wheel covers `64^7` ns ≈ 73 minutes of simulated
//!   future from the wheel cursor. An event at time `t` lives at the level of
//!   the most significant bit in which `t` differs from the cursor — which is
//!   why a slot index, once occupied, is always *ahead* of the cursor's index
//!   at that level and per-level occupancy bitmaps can be scanned with a
//!   single `trailing_zeros`.
//! * **Overflow.** Events beyond the wheel horizon (including
//!   "never"-sentinel timestamps near [`SimTime::MAX`]) go to a small binary
//!   min-heap and migrate into the wheel when the cursor's top-level span
//!   reaches them. Cancelled overflow entries are reaped once they outnumber
//!   live ones, keeping memory O(live).
//! * **Slab.** Entries live in a free-listed slab and are threaded through
//!   wheel buckets as doubly-linked lists of `u32` indices: schedule, cancel
//!   and pop are allocation-free in steady state, and cancellation physically
//!   unlinks the entry in O(1) — no lazy deletion in the wheel itself.
//! * **Batched dispatch.** `pop` drains an entire level-0 slot (all events
//!   sharing one timestamp) into a staging batch sorted by scheduling
//!   sequence number, then hands events out one by one without re-touching
//!   the priority structure.
//!
//! The wheel cursor only advances inside `pop`, immediately before an event
//! is delivered, so a `schedule` between `peek_time` and `pop` can never
//! land behind the cursor: anything earlier than the last *delivered*
//! timestamp is causality-clamped to it, exactly as the heap queue did.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the number of slots per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels; times within `2^(LEVEL_BITS * LEVELS)` ns of the
/// cursor's aligned span are wheel-resident, everything farther overflows.
const LEVELS: usize = 7;
/// Total bits of simulated time covered by the wheel (42 ⇒ ~73 minutes).
const WHEEL_BITS: u32 = LEVEL_BITS * LEVELS as u32;

/// Sentinel "null" slab index for bucket links and the free list.
const NIL: u32 = u32::MAX;

/// Identifier of a scheduled event, used for cancellation.
///
/// The id packs the event's slab slot and a per-slot generation counter, so
/// cancellation is a bounds-checked array access plus a generation compare —
/// no hashing. Within one [`EventQueue`] an id never aliases a different
/// event until a single slab slot has been reused 2^32 times, which no
/// realistic simulation approaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The raw identifier value (mostly useful for logging).
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    const fn pack(generation: u32, index: u32) -> Self {
        EventId(((generation as u64) << 32) | index as u64)
    }

    const fn unpack(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

/// Where a slab entry currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// On the free list (not a scheduled event).
    Free,
    /// Linked into wheel bucket `slot` of `level`.
    Wheel { level: u8, slot: u8 },
    /// Referenced by the overflow heap.
    Overflow,
    /// Drained into the current dispatch batch, awaiting delivery.
    Staged,
}

/// One slab-backed event entry.
#[derive(Debug)]
struct Slot<E> {
    time: u64,
    /// FIFO rank at equal timestamps: the simulated instant the event was
    /// scheduled at (see [`EventQueue::schedule_backdated`]).
    inserted: u64,
    seq: u64,
    /// Bumped every time the slot is freed; ids carry the generation they
    /// were created under, so stale ids (delivered/cancelled events, or
    /// reused slots) are rejected by a single compare.
    generation: u32,
    /// Previous entry in the wheel bucket (NIL at the head).
    prev: u32,
    /// Next entry in the wheel bucket, or next free slot on the free list.
    next: u32,
    loc: Loc,
    payload: Option<E>,
}

/// Overflow-heap reference: `(time, inserted, seq)` min-order, pointing back
/// into the slab. Cancels leave stale references behind (detected by
/// generation mismatch) which are reaped once they outnumber live overflow
/// entries.
#[derive(Debug, PartialEq, Eq)]
struct OverflowRef {
    time: u64,
    inserted: u64,
    seq: u64,
    index: u32,
    generation: u32,
}

impl PartialOrd for OverflowRef {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OverflowRef {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to obtain earliest-first ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.inserted.cmp(&self.inserted))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Always-on self-profiling counters maintained by the queue.
///
/// These are plain monotonic integers incremented alongside existing
/// operations — cheap enough to keep unconditionally, and purely
/// observational: no queue decision reads them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueCounters {
    /// Events scheduled (every `schedule`/`schedule_backdated` call).
    pub scheduled: u64,
    /// Events delivered to `pop` callers.
    pub dispatched: u64,
    /// Events cancelled while still pending.
    pub cancelled: u64,
    /// Level-0 dispatch batches staged by `refill_batch`.
    pub level0_batches: u64,
    /// Events staged through level-0 batches (sum of batch sizes).
    pub batched_events: u64,
    /// Largest single level-0 batch staged.
    pub max_batch: u64,
    /// Schedules that missed the wheel horizon and went to the overflow heap.
    pub overflow_hits: u64,
}

/// Scheduled/dispatched/cancelled counts for one event kind, as classified by
/// the opt-in profiler (see [`EventQueue::enable_profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindCounters {
    /// Events of this kind scheduled.
    pub scheduled: u64,
    /// Events of this kind dispatched.
    pub dispatched: u64,
    /// Events of this kind cancelled.
    pub cancelled: u64,
}

/// Opt-in per-event-kind profiler: a caller-supplied classifier plus one
/// counter row per kind.
struct QueueProfile<E> {
    classify: Box<dyn Fn(&E) -> usize>,
    kinds: Vec<KindCounters>,
}

impl<E> QueueProfile<E> {
    fn count(&mut self, payload: &E, bump: impl FnOnce(&mut KindCounters)) {
        let kind = (self.classify)(payload);
        if let Some(row) = self.kinds.get_mut(kind) {
            bump(row);
        }
    }
}

impl<E> std::fmt::Debug for QueueProfile<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueProfile")
            .field("kinds", &self.kinds)
            .finish_non_exhaustive()
    }
}

/// Memory footprint of a queue's backing storage, for tests and diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct QueueFootprint {
    /// Slab slots allocated (live + free-listed).
    pub slab_slots: usize,
    /// Entries physically held by the overflow heap, including cancelled
    /// entries awaiting the reap pass.
    pub overflow_entries: usize,
}

/// A deterministic pending-event queue for discrete-event simulation.
///
/// Events are delivered in non-decreasing timestamp order; ties are broken by
/// scheduling order (FIFO) — precisely, by `(insertion instant, scheduling
/// sequence)`, which coincides with pure scheduling order except for events
/// injected via [`EventQueue::schedule_backdated`]. Internally this is a
/// hierarchical timer wheel (see the module docs): `schedule`, `cancel` and
/// `pop` run in O(1) amortized time and do not allocate in steady state.
///
/// # Examples
///
/// ```
/// use apc_sim::engine::EventQueue;
/// use apc_sim::time::SimTime;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(SimTime::from_nanos(20), "b");
/// queue.schedule(SimTime::from_nanos(10), "a");
/// let id = queue.schedule(SimTime::from_nanos(30), "cancelled");
/// queue.cancel(id);
///
/// assert_eq!(queue.pop(), Some((SimTime::from_nanos(10), "a")));
/// assert_eq!(queue.pop(), Some((SimTime::from_nanos(20), "b")));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    slab: Vec<Slot<E>>,
    /// Head of the free list threaded through `Slot::next`.
    free_head: u32,
    /// Per-level occupancy bitmap: bit `s` set ⇔ bucket `s` is non-empty.
    occupied: [u64; LEVELS],
    /// Bucket heads (slab indices) per level and slot.
    buckets: Box<[[u32; SLOTS]; LEVELS]>,
    overflow: BinaryHeap<OverflowRef>,
    /// Stale (cancelled) references still inside `overflow`.
    overflow_dead: usize,
    /// Current dispatch batch: `(inserted, seq, index, generation)` of every
    /// event at `batch_time`, sorted by `(inserted, seq)`. Drained via
    /// `batch_pos`.
    batch: Vec<(u64, u64, u32, u32)>,
    batch_pos: usize,
    batch_time: u64,
    /// Wheel reference time. Only advances inside `pop`, so schedules
    /// observed between pops can never land behind it (they clamp to `now`,
    /// and `now == cursor` once a batch is being delivered).
    cursor: u64,
    /// Timestamp of the most recently delivered event, in nanoseconds.
    now: u64,
    next_seq: u64,
    live: usize,
    delivered: u64,
    /// Cached head-event key `(time, inserted, seq)`: `None` = stale
    /// (recompute on demand), `Some(None)` = known empty. Keeps `peek_time`
    /// and `peek_key` O(1) on the run-loop's peek-then-pop pattern.
    cached_next: Option<Option<(u64, u64, u64)>>,
    /// Always-on self-profiling counters (`dispatched` mirrors `delivered`).
    counters: QueueCounters,
    /// Opt-in per-event-kind profiler.
    profile: Option<QueueProfile<E>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            slab: Vec::new(),
            free_head: NIL,
            occupied: [0; LEVELS],
            buckets: Box::new([[NIL; SLOTS]; LEVELS]),
            overflow: BinaryHeap::new(),
            overflow_dead: 0,
            batch: Vec::new(),
            batch_pos: 0,
            batch_time: 0,
            cursor: 0,
            now: 0,
            next_seq: 0,
            live: 0,
            delivered: 0,
            cached_next: Some(None),
            counters: QueueCounters::default(),
            profile: None,
        }
    }

    /// The timestamp of the most recently delivered event (the current
    /// simulated time from the queue's perspective).
    #[must_use]
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now)
    }

    /// Number of events delivered so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events currently pending (cancelled events are excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Self-profiling counter snapshot (`dispatched` equals
    /// [`EventQueue::delivered`]).
    #[must_use]
    pub fn counters(&self) -> QueueCounters {
        QueueCounters {
            dispatched: self.delivered,
            ..self.counters
        }
    }

    /// Enables per-event-kind profiling: `classify` maps every payload to a
    /// kind index in `0..kinds` (out-of-range indices are ignored), and the
    /// queue keeps scheduled/dispatched/cancelled counts per kind. Purely
    /// observational — delivery order and results are unaffected.
    pub fn enable_profile(&mut self, kinds: usize, classify: impl Fn(&E) -> usize + 'static) {
        self.profile = Some(QueueProfile {
            classify: Box::new(classify),
            kinds: vec![KindCounters::default(); kinds],
        });
    }

    /// Per-kind counter rows, if [`EventQueue::enable_profile`] was called.
    #[must_use]
    pub fn kind_counters(&self) -> Option<&[KindCounters]> {
        self.profile.as_ref().map(|p| p.kinds.as_slice())
    }

    /// Backing-storage sizes, for O(live)-memory tests and diagnostics.
    #[must_use]
    pub fn footprint(&self) -> QueueFootprint {
        QueueFootprint {
            slab_slots: self.slab.len(),
            overflow_entries: self.overflow.len(),
        }
    }

    /// Schedules `payload` for delivery at time `at` and returns a handle
    /// that can be used to cancel it.
    ///
    /// Scheduling an event in the past (before the last delivered event) is a
    /// causality violation; the event is clamped to the current time so that
    /// it is delivered next, which mirrors how hardware would observe a
    /// "should already have happened" condition immediately.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let inserted = SimTime::from_nanos(self.now);
        self.schedule_backdated(at, inserted, payload)
    }

    /// Schedules `payload` for delivery at `at` with an explicit FIFO rank:
    /// at equal timestamps the event is ordered as if it had been scheduled
    /// at simulated instant `inserted` (clamped to `at`), before every event
    /// scheduled at a later instant and after every event scheduled at an
    /// earlier one. Among events with equal `(time, inserted)`, actual
    /// scheduling order still decides.
    ///
    /// [`EventQueue::schedule`] is the `inserted = now` special case, so for
    /// plain scheduling the rank reduces to pure FIFO. Backdating exists for
    /// partitioned simulations (see `engine::partition`): a driver replaying
    /// a cross-partition event into a partition after the fact can hand it
    /// the seq rank it would have received in the sequential loop, keeping
    /// same-timestamp dispatch order bit-identical.
    pub fn schedule_backdated(&mut self, at: SimTime, inserted: SimTime, payload: E) -> EventId {
        let t = at.as_nanos().max(self.now);
        let ins = inserted.as_nanos().min(t);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counters.scheduled += 1;
        if let Some(p) = &mut self.profile {
            p.count(&payload, |row| row.scheduled += 1);
        }
        let index = self.alloc(t, ins, seq, payload);
        let generation = self.slab[index as usize].generation;
        self.place(index, t, ins, seq);
        self.live += 1;
        // A valid cache only needs a min-update; a stale one stays stale.
        if let Some(next) = &mut self.cached_next {
            match next {
                Some(c) => *c = (*c).min((t, ins, seq)),
                None => *next = Some((t, ins, seq)),
            }
        }
        EventId::pack(generation, index)
    }

    /// Cancels a previously scheduled event in O(1).
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already been delivered or cancelled. Wheel-resident entries are
    /// unlinked and freed immediately; overflow entries are freed and their
    /// heap references reaped once dead references outnumber live ones.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let (generation, index) = id.unpack();
        let Some(slot) = self.slab.get(index as usize) else {
            return false;
        };
        if slot.generation != generation || slot.loc == Loc::Free {
            return false;
        }
        let time = slot.time;
        self.counters.cancelled += 1;
        if let Some(p) = &mut self.profile {
            if let Some(payload) = slot.payload.as_ref() {
                p.count(payload, |row| row.cancelled += 1);
            }
        }
        match slot.loc {
            Loc::Wheel { level, slot: s } => {
                self.unlink(index, level as usize, s as usize);
            }
            Loc::Overflow => {
                self.overflow_dead += 1;
                if self.overflow_dead * 2 > self.overflow.len() {
                    self.reap_overflow(index);
                }
            }
            // Staged entries are skipped at delivery via the generation check.
            Loc::Staged => {}
            Loc::Free => unreachable!(),
        }
        self.free_slot(index);
        self.live -= 1;
        // Cancelling the (possibly sole) earliest event invalidates the hint.
        if matches!(self.cached_next, Some(Some((t, _, _))) if t == time) {
            self.cached_next = None;
        }
        true
    }

    /// The timestamp of the next live event, if any — O(1) amortized: served
    /// from the in-flight dispatch batch or a cached hint, recomputed with a
    /// bitmap scan only after the structure actually changed.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// The `(timestamp, insertion instant)` key of the next live event, if
    /// any. Same cost and staleness rules as [`EventQueue::peek_time`]; the
    /// insertion instant is what same-timestamp FIFO order is ranked by (see
    /// [`EventQueue::schedule_backdated`]), which partitioned-simulation
    /// drivers compare against to interleave foreign instants exactly where
    /// the sequential loop would have dispatched them.
    pub fn peek_key(&mut self) -> Option<(SimTime, SimTime)> {
        while let Some(&(inserted, _, index, generation)) = self.batch.get(self.batch_pos) {
            let slot = &self.slab[index as usize];
            if slot.generation == generation && slot.loc == Loc::Staged {
                return Some((
                    SimTime::from_nanos(self.batch_time),
                    SimTime::from_nanos(inserted),
                ));
            }
            // Cancelled while staged; skip permanently.
            self.batch_pos += 1;
        }
        let next = match self.cached_next {
            Some(next) => next,
            None => {
                let next = self.compute_next();
                self.cached_next = Some(next);
                next
            }
        };
        next.map(|(t, ins, _)| (SimTime::from_nanos(t), SimTime::from_nanos(ins)))
    }

    /// Removes and returns the earliest live event together with its
    /// timestamp, advancing the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            while let Some(&(_, _, index, generation)) = self.batch.get(self.batch_pos) {
                self.batch_pos += 1;
                let slot = &mut self.slab[index as usize];
                if slot.generation != generation || slot.loc != Loc::Staged {
                    continue; // cancelled while staged
                }
                let payload = slot.payload.take().expect("staged event has a payload");
                self.free_slot(index);
                self.live -= 1;
                self.delivered += 1;
                self.now = self.batch_time;
                if let Some(p) = &mut self.profile {
                    p.count(&payload, |row| row.dispatched += 1);
                }
                return Some((SimTime::from_nanos(self.batch_time), payload));
            }
            if !self.refill_batch() {
                return None;
            }
        }
    }

    /// Allocates a slab slot (reusing the free list when possible).
    fn alloc(&mut self, time: u64, inserted: u64, seq: u64, payload: E) -> u32 {
        if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.slab[index as usize];
            self.free_head = slot.next;
            slot.time = time;
            slot.inserted = inserted;
            slot.seq = seq;
            slot.payload = Some(payload);
            index
        } else {
            assert!(self.slab.len() < NIL as usize, "event slab full");
            self.slab.push(Slot {
                time,
                inserted,
                seq,
                generation: 0,
                prev: NIL,
                next: NIL,
                loc: Loc::Free,
                payload: Some(payload),
            });
            (self.slab.len() - 1) as u32
        }
    }

    /// Returns a slot to the free list, bumping its generation so every id
    /// handed out for it so far goes stale.
    fn free_slot(&mut self, index: u32) {
        let slot = &mut self.slab[index as usize];
        slot.generation = slot.generation.wrapping_add(1);
        slot.loc = Loc::Free;
        slot.payload = None;
        slot.next = self.free_head;
        self.free_head = index;
    }

    /// Links entry `index` (time `t`) into the wheel or the overflow heap.
    ///
    /// The level is the position of the most significant bit in which `t`
    /// differs from the cursor; because `t >= cursor` always holds (schedule
    /// clamps, cascades re-place forward), the computed slot index is never
    /// behind the cursor's own index at that level.
    fn place(&mut self, index: u32, t: u64, inserted: u64, seq: u64) {
        let x = t ^ self.cursor;
        if x >> WHEEL_BITS != 0 {
            self.counters.overflow_hits += 1;
            let generation = self.slab[index as usize].generation;
            self.slab[index as usize].loc = Loc::Overflow;
            self.overflow.push(OverflowRef {
                time: t,
                inserted,
                seq,
                index,
                generation,
            });
            return;
        }
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / LEVEL_BITS) as usize
        };
        let s = ((t >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let head = self.buckets[level][s];
        {
            let slot = &mut self.slab[index as usize];
            slot.prev = NIL;
            slot.next = head;
            slot.loc = Loc::Wheel {
                level: level as u8,
                slot: s as u8,
            };
        }
        if head != NIL {
            self.slab[head as usize].prev = index;
        }
        self.buckets[level][s] = index;
        self.occupied[level] |= 1 << s;
    }

    /// Unlinks entry `index` from wheel bucket `(level, s)` in O(1).
    fn unlink(&mut self, index: u32, level: usize, s: usize) {
        let (prev, next) = {
            let slot = &self.slab[index as usize];
            (slot.prev, slot.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.buckets[level][s] = next;
            if next == NIL {
                self.occupied[level] &= !(1 << s);
            }
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        }
    }

    /// Drops stale (cancelled) references off the top of the overflow heap.
    fn clean_overflow_top(&mut self) {
        while let Some(top) = self.overflow.peek() {
            let slot = &self.slab[top.index as usize];
            if slot.generation == top.generation && slot.loc == Loc::Overflow {
                break;
            }
            self.overflow.pop();
            self.overflow_dead = self.overflow_dead.saturating_sub(1);
        }
    }

    /// Rebuilds the overflow heap from live references only. O(n), amortized
    /// O(1) per cancel because it only runs once dead references outnumber
    /// live ones. `cancelling` is the entry being cancelled right now (its
    /// slot has not been freed yet, so it still looks live).
    fn reap_overflow(&mut self, cancelling: u32) {
        let slab = &self.slab;
        let mut refs = std::mem::take(&mut self.overflow).into_vec();
        refs.retain(|r| {
            let slot = &slab[r.index as usize];
            r.index != cancelling && slot.generation == r.generation && slot.loc == Loc::Overflow
        });
        self.overflow = BinaryHeap::from(refs);
        self.overflow_dead = 0;
    }

    /// Migrates every overflow entry that now fits the cursor's wheel span.
    fn migrate_overflow(&mut self) {
        loop {
            self.clean_overflow_top();
            match self.overflow.peek() {
                Some(top) if (top.time ^ self.cursor) >> WHEEL_BITS == 0 => {
                    let r = self.overflow.pop().expect("peeked entry exists");
                    self.place(r.index, r.time, r.inserted, r.seq);
                }
                _ => return,
            }
        }
    }

    /// Exact head-event key `(time, inserted, seq)`, without advancing the
    /// cursor: the first occupied bucket in level order is the earliest one
    /// (bucket time ranges are disjoint and increase with level and slot
    /// index), and overflow entries are always beyond every wheel entry.
    fn compute_next(&mut self) -> Option<(u64, u64, u64)> {
        for level in 0..LEVELS {
            let bits = self.occupied[level];
            if bits == 0 {
                continue;
            }
            let s = bits.trailing_zeros() as usize;
            // A level-0 bucket holds a single timestamp; higher buckets span
            // a range, so scan for the minimum key.
            let mut key = (u64::MAX, u64::MAX, u64::MAX);
            let mut i = self.buckets[level][s];
            while i != NIL {
                let slot = &self.slab[i as usize];
                key = key.min((slot.time, slot.inserted, slot.seq));
                i = slot.next;
            }
            return Some(key);
        }
        self.clean_overflow_top();
        self.overflow
            .peek()
            .map(|top| (top.time, top.inserted, top.seq))
    }

    /// Finds the earliest non-empty level-0 bucket (cascading higher levels
    /// and migrating overflow as needed) and stages it as the next dispatch
    /// batch, sorted by scheduling order. Returns `false` when no live events
    /// remain. This is the only place the cursor advances.
    fn refill_batch(&mut self) -> bool {
        self.batch.clear();
        self.batch_pos = 0;
        self.cached_next = None;
        loop {
            self.migrate_overflow();
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                self.clean_overflow_top();
                // The wheel is empty, so jumping the cursor straight to the
                // next overflow timestamp (a new top-level span) is safe.
                let Some(top) = self.overflow.peek() else {
                    self.cached_next = Some(None);
                    return false;
                };
                self.cursor = top.time;
                continue;
            };
            let s = self.occupied[level].trailing_zeros() as usize;
            let head = self.buckets[level][s];
            self.buckets[level][s] = NIL;
            self.occupied[level] &= !(1 << s);
            if level == 0 {
                // One timestamp per level-0 bucket: stage and deliver.
                let mut i = head;
                let mut t = self.cursor;
                while i != NIL {
                    let slot = &mut self.slab[i as usize];
                    slot.loc = Loc::Staged;
                    self.batch
                        .push((slot.inserted, slot.seq, i, slot.generation));
                    t = slot.time;
                    i = slot.next;
                }
                // FIFO is restored by (inserted, seq), but a full sort is
                // rarely needed: bucket insertion is head-first (LIFO), so
                // entries that arrived in one pass — direct schedules and
                // single-level cascades, the overwhelming steady-state case —
                // read back exactly reversed. Only a multi-pass mix (cascade
                // landing in a bucket that already had direct entries, or a
                // backdated schedule) pays the sort.
                if self.batch.len() > 1 {
                    if self.batch.windows(2).all(|w| w[0] >= w[1]) {
                        self.batch.reverse();
                    } else if !self.batch.windows(2).all(|w| w[0] <= w[1]) {
                        self.batch.sort_unstable();
                    }
                }
                self.counters.level0_batches += 1;
                self.counters.batched_events += self.batch.len() as u64;
                self.counters.max_batch = self.counters.max_batch.max(self.batch.len() as u64);
                self.batch_time = t;
                self.cursor = t;
                return true;
            }
            // Cascade: advance the cursor to the bucket's base time and
            // re-place its entries one or more levels down.
            let shift = LEVEL_BITS * level as u32;
            let high_mask = !((1u64 << (shift + LEVEL_BITS)) - 1);
            self.cursor = (self.cursor & high_mask) | ((s as u64) << shift);
            let mut i = head;
            while i != NIL {
                let slot = &self.slab[i as usize];
                let (next, t, ins, seq) = (slot.next, slot.time, slot.inserted, slot.seq);
                self.place(i, t, ins, seq);
                i = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn backdated_schedules_rank_by_insertion_instant_at_equal_timestamps() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), 0);
        q.pop(); // now = 100
                 // Inserted at instant 100:
        q.schedule(SimTime::from_nanos(200), 2);
        // Backdated to instant 50: ranks before the instant-100 insertion
        // despite the later scheduling call...
        q.schedule_backdated(SimTime::from_nanos(200), SimTime::from_nanos(50), 1);
        // ...and equal (time, inserted) keys fall back to scheduling order.
        q.schedule_backdated(SimTime::from_nanos(200), SimTime::from_nanos(50), 10);
        q.schedule(SimTime::from_nanos(200), 3);
        assert_eq!(
            q.peek_key(),
            Some((SimTime::from_nanos(200), SimTime::from_nanos(50)))
        );
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 10, 2, 3]);
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(10), "a");
        let b = q.schedule(SimTime::from_nanos(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert!(!q.cancel(b), "cannot cancel a delivered event");
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "first");
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(10));
        q.schedule(SimTime::from_micros(1), "late");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(10));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(5), "a");
        q.schedule(SimTime::from_nanos(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn tracks_delivered_count_and_now() {
        let mut q = EventQueue::new();
        let t0 = SimTime::ZERO + SimDuration::from_micros(1);
        q.schedule(t0, ());
        q.schedule(t0 + SimDuration::from_micros(1), ());
        while q.pop().is_some() {}
        assert_eq!(q.delivered(), 2);
        assert_eq!(q.now(), SimTime::from_micros(2));
        assert!(q.is_empty());
    }

    #[test]
    fn cross_level_cascades_preserve_order() {
        // Spread events across every wheel level (spans from ns to minutes)
        // with a deterministic LCG, then check global (time, seq) order.
        let mut q = EventQueue::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for i in 0..5_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = x % (1 << 40); // up to ~18 simulated minutes
            q.schedule(SimTime::from_nanos(t), (t, i));
            expected.push((t, i));
        }
        expected.sort_unstable();
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut q = EventQueue::new();
        let far = 1u64 << 50; // beyond the 2^42 ns wheel horizon
        q.schedule(SimTime::from_nanos(far + 7), "later");
        q.schedule(SimTime::from_nanos(far), "sooner");
        q.schedule(SimTime::from_nanos(5), "near");
        let sentinel = q.schedule(SimTime::MAX, "never");
        assert_eq!(q.footprint().overflow_entries, 3);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "near")));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(far)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far), "sooner")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(far + 7), "later")));
        assert!(q.cancel(sentinel));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn events_scheduled_at_now_during_a_batch_run_after_it() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        q.schedule(t, 1);
        q.schedule(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        // Mid-batch follow-up at the same timestamp: delivered after the
        // rest of the batch, in scheduling order.
        q.schedule(t, 3);
        q.schedule(SimTime::from_nanos(1), 4); // causality-clamped to t
        assert_eq!(q.pop(), Some((t, 2)));
        assert_eq!(q.pop(), Some((t, 3)));
        assert_eq!(q.pop(), Some((t, 4)));
        assert_eq!(q.now(), t);
    }

    #[test]
    fn cancel_heavy_rearm_keeps_storage_bounded() {
        // NIC-coalescing pattern in the wheel: cancel + re-arm one deadline.
        let mut q = EventQueue::new();
        let mut pending = q.schedule(SimTime::from_nanos(100), 0u32);
        for i in 1..10_000u32 {
            assert!(q.cancel(pending));
            pending = q.schedule(SimTime::from_nanos(100 + u64::from(i)), i);
            assert!(q.footprint().slab_slots <= 2, "slab grew unbounded");
        }
        // Same pattern through the overflow heap.
        let far = 1u64 << 50;
        let mut sentinel = q.schedule(SimTime::from_nanos(far), 0u32);
        for i in 1..10_000u32 {
            assert!(q.cancel(sentinel));
            sentinel = q.schedule(SimTime::from_nanos(far + u64::from(i)), i);
            let fp = q.footprint();
            assert!(fp.overflow_entries <= 4, "overflow heap grew unbounded");
            assert!(fp.slab_slots <= 4, "slab grew unbounded");
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(9_999));
    }

    #[test]
    fn peek_time_matches_pop_under_cancellation_churn() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..100u64)
            .map(|i| q.schedule(SimTime::from_nanos(i * 37 % 512), i))
            .collect();
        for id in ids.iter().step_by(3) {
            q.cancel(*id);
        }
        while let Some(peeked) = q.peek_time() {
            let (t, _) = q.pop().expect("peeked event pops");
            assert_eq!(t, peeked);
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn self_profiling_counters_track_operations() {
        let mut q = EventQueue::new();
        q.enable_profile(2, |e: &u32| (*e % 2) as usize);
        let a = q.schedule(SimTime::from_nanos(10), 0u32);
        q.schedule(SimTime::from_nanos(10), 2);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(1 << 50), 3); // beyond the wheel horizon
        assert!(q.cancel(a));
        while q.pop().is_some() {}
        let c = q.counters();
        assert_eq!(c.scheduled, 4);
        assert_eq!(c.cancelled, 1);
        assert_eq!(c.dispatched, 3);
        assert_eq!(c.dispatched, q.delivered());
        assert_eq!(c.overflow_hits, 1);
        assert_eq!(c.level0_batches, 2);
        assert_eq!(c.batched_events, 3);
        assert_eq!(c.max_batch, 2);
        let kinds = q.kind_counters().expect("profile enabled");
        assert_eq!(
            kinds[0],
            KindCounters {
                scheduled: 2,
                dispatched: 1,
                cancelled: 1
            }
        );
        assert_eq!(
            kinds[1],
            KindCounters {
                scheduled: 2,
                dispatched: 2,
                cancelled: 0
            }
        );
    }

    #[test]
    fn ids_from_reused_slots_do_not_alias() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(10), "a");
        assert!(q.cancel(a));
        // The freed slab slot is reused; the stale id must not cancel it.
        let b = q.schedule(SimTime::from_nanos(20), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert!(!q.cancel(b));
    }
}
