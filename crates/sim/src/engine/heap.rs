//! The original binary-heap event queue, kept as the reference model.
//!
//! [`HeapEventQueue`] is the queue the engine shipped with before the timer
//! wheel landed: a `BinaryHeap` ordered by `(time, seq)` with cancellations
//! handled by lazy deletion against a live-id set. It is retained for two
//! reasons:
//!
//! * it is the *executable specification* of the delivery contract — the
//!   differential test suite drives it in lockstep with the wheel-based
//!   [`EventQueue`](crate::engine::EventQueue) and asserts bit-identical
//!   behaviour;
//! * it is the baseline in the `event_core` micro-benchmarks, so the wheel's
//!   advantage stays measured rather than assumed.
//!
//! Unlike the original implementation, cancelled entries no longer accumulate
//! without bound: when dead (cancelled-but-unreaped) entries outnumber live
//! ones the heap is compacted in O(n), keeping memory O(live) under
//! cancel-heavy rearm workloads such as NIC deadline coalescing.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::time::SimTime;

/// Multiply-shift hasher for [`HeapEventId`] sets. Event ids are sequential
/// `u64`s, so full SipHash is wasted work on the schedule/pop hot path; a
/// single Fibonacci multiply disperses them well enough for a `HashSet`.
#[derive(Default)]
pub struct EventIdHasher(u64);

impl Hasher for EventIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("EventIdHasher only hashes u64 event ids");
    }

    fn write_u64(&mut self, id: u64) {
        self.0 = id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type EventIdSet = HashSet<HeapEventId, BuildHasherDefault<EventIdHasher>>;

/// Identifier of an event scheduled into a [`HeapEventQueue`].
///
/// Identifiers are unique within one queue instance and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeapEventId(u64);

impl HeapEventId {
    /// The raw identifier value (mostly useful for logging).
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// Internal heap entry. Ordered by `(time, inserted, seq)` so that events
/// scheduled for the same instant are delivered in FIFO order — the
/// `inserted` component only reorders events injected through
/// [`HeapEventQueue::schedule_backdated`] — which makes simulations
/// deterministic.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    inserted: SimTime,
    seq: u64,
    id: HeapEventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.inserted == other.inserted && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to obtain earliest-first ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.inserted.cmp(&self.inserted))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference binary-heap event queue.
///
/// Events are delivered in non-decreasing timestamp order; ties are broken by
/// scheduling order (FIFO). Cancellation is supported through lazy deletion,
/// which keeps both `schedule` and `pop` at `O(log n)`; a compaction pass
/// keeps the heap O(live) when cancellations dominate.
///
/// # Examples
///
/// ```
/// use apc_sim::engine::HeapEventQueue;
/// use apc_sim::time::SimTime;
///
/// let mut queue = HeapEventQueue::new();
/// queue.schedule(SimTime::from_nanos(20), "b");
/// queue.schedule(SimTime::from_nanos(10), "a");
/// let id = queue.schedule(SimTime::from_nanos(30), "cancelled");
/// queue.cancel(id);
///
/// assert_eq!(queue.pop(), Some((SimTime::from_nanos(10), "a")));
/// assert_eq!(queue.pop(), Some((SimTime::from_nanos(20), "b")));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids of events that are scheduled, not yet delivered and not cancelled.
    /// Tracking the live set makes [`HeapEventQueue::cancel`] O(1) instead of
    /// a linear scan of the heap; a heap entry whose id is no longer live is
    /// a cancelled event awaiting lazy removal.
    live: EventIdSet,
    next_seq: u64,
    /// Timestamp of the most recently delivered event; used to detect
    /// causality violations (scheduling into the past).
    now: SimTime,
    delivered: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty event queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            live: EventIdSet::default(),
            next_seq: 0,
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// The timestamp of the most recently delivered event (the current
    /// simulated time from the queue's perspective).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events currently pending (cancelled-but-not-yet-reaped
    /// events are excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries physically held by the heap, including cancelled
    /// entries awaiting lazy removal. Exposed so tests can pin the O(live)
    /// compaction guarantee.
    #[must_use]
    pub fn backing_len(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `payload` for delivery at time `at` and returns a handle
    /// that can be used to cancel it.
    ///
    /// Scheduling an event in the past (before the last delivered event) is a
    /// causality violation; the event is clamped to the current time so that
    /// it is delivered next, which mirrors how hardware would observe a
    /// "should already have happened" condition immediately.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> HeapEventId {
        self.schedule_backdated(at, self.now, payload)
    }

    /// Schedules `payload` at `at` with an explicit FIFO rank: at equal
    /// timestamps the event orders as if scheduled at instant `inserted`
    /// (clamped to `at`). Mirrors
    /// [`EventQueue::schedule_backdated`](crate::engine::EventQueue::schedule_backdated);
    /// see there for why partitioned drivers need it.
    pub fn schedule_backdated(
        &mut self,
        at: SimTime,
        inserted: SimTime,
        payload: E,
    ) -> HeapEventId {
        let time = if at < self.now { self.now } else { at };
        let id = HeapEventId(self.next_seq);
        let entry = Entry {
            time,
            inserted: inserted.min(time),
            seq: self.next_seq,
            id,
            payload,
        };
        self.next_seq += 1;
        self.heap.push(entry);
        self.live.insert(id);
        id
    }

    /// Cancels a previously scheduled event in O(1) amortized.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already been delivered or cancelled. The heap entry itself is removed
    /// lazily when it reaches the top of the heap, or eagerly by a compaction
    /// pass once dead entries outnumber live ones.
    pub fn cancel(&mut self, id: HeapEventId) -> bool {
        let cancelled = self.live.remove(&id);
        if cancelled && self.heap.len() > 2 * self.live.len() {
            self.compact();
        }
        cancelled
    }

    /// The timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.reap_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// The `(timestamp, insertion instant)` key of the next live event, if
    /// any — the key same-timestamp FIFO order is ranked by.
    pub fn peek_key(&mut self) -> Option<(SimTime, SimTime)> {
        self.reap_cancelled();
        self.heap.peek().map(|e| (e.time, e.inserted))
    }

    /// Removes and returns the earliest live event together with its
    /// timestamp, advancing the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let entry = self.heap.pop()?;
            if !self.live.remove(&entry.id) {
                // Cancelled while pending; drop it.
                continue;
            }
            self.now = entry.time;
            self.delivered += 1;
            return Some((entry.time, entry.payload));
        }
    }

    /// Drops cancelled entries sitting at the top of the heap.
    fn reap_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.live.contains(&top.id) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Rebuilds the heap from its live entries only. O(n), amortized O(1) per
    /// cancel because it only runs once dead entries outnumber live ones.
    /// Delivery order is unaffected: order is a function of `(time, seq)`,
    /// not of the heap's internal layout.
    fn compact(&mut self) {
        let live = &self.live;
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| live.contains(&e.id));
        self.heap = BinaryHeap::from(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn delivers_in_time_order() {
        let mut q = HeapEventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = HeapEventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = HeapEventQueue::new();
        let a = q.schedule(SimTime::from_nanos(10), "a");
        let b = q.schedule(SimTime::from_nanos(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert!(!q.cancel(b), "cannot cancel a delivered event");
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = HeapEventQueue::new();
        q.schedule(SimTime::from_micros(10), "first");
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(10));
        q.schedule(SimTime::from_micros(1), "late");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(10));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = HeapEventQueue::new();
        let a = q.schedule(SimTime::from_nanos(5), "a");
        q.schedule(SimTime::from_nanos(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn tracks_delivered_count_and_now() {
        let mut q = HeapEventQueue::new();
        let t0 = SimTime::ZERO + SimDuration::from_micros(1);
        q.schedule(t0, ());
        q.schedule(t0 + SimDuration::from_micros(1), ());
        while q.pop().is_some() {}
        assert_eq!(q.delivered(), 2);
        assert_eq!(q.now(), SimTime::from_micros(2));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_heavy_rearm_keeps_backing_storage_bounded() {
        // The NIC-coalescing pattern: one live deadline, constantly
        // cancelled and re-armed. Before the compaction fix the heap grew by
        // one dead entry per rearm.
        let mut q = HeapEventQueue::new();
        let mut pending = q.schedule(SimTime::from_nanos(100), 0u32);
        for i in 1..10_000u32 {
            assert!(q.cancel(pending));
            pending = q.schedule(SimTime::from_nanos(100 + u64::from(i)), i);
            assert!(q.backing_len() <= 2 * q.len() + 1, "heap grew unbounded");
        }
        assert_eq!(q.len(), 1);
        let (_, last) = q.pop().unwrap();
        assert_eq!(last, 9_999);
    }
}
