//! Component registry, event dispatch and the simulation driver.
//!
//! This module turns the bare scheduling primitives of [`crate::engine`] into
//! a full discrete-event simulation framework in the style of DSLab's
//! simulation core: user-defined *components* are registered with a
//! [`Simulation`], each receives events through the [`EventHandler`] trait,
//! and produces new events through a [`SimulationContext`] that exposes the
//! clock, the event queue and a per-component deterministic RNG stream.
//!
//! Two type parameters thread through everything:
//!
//! * `E` — the event payload type, typically one enum shared by all
//!   components of a simulation;
//! * `S` — the *shared state* visible to every component (the modelled
//!   hardware, work queues, telemetry). Component-private state lives inside
//!   the component struct itself; anything two components must both observe
//!   belongs in `S`.
//!
//! Determinism: [`Simulation::new`] seeds one root [`SimRng`]; every
//! registered component receives a stream forked from that root by component
//! name, so identical seeds yield bit-identical runs regardless of how much
//! randomness any individual component consumes.
//!
//! # Example
//!
//! ```
//! use apc_sim::component::{EventHandler, Simulation, SimulationContext};
//! use apc_sim::{SimDuration, SimTime};
//!
//! #[derive(Debug, Clone, Copy, PartialEq, Eq)]
//! enum Event {
//!     Ping,
//!     Pong,
//! }
//!
//! #[derive(Default)]
//! struct Counter {
//!     pings: u64,
//! }
//!
//! struct PingPong;
//!
//! impl EventHandler<Event, Counter> for PingPong {
//!     fn on_event(
//!         &mut self,
//!         event: Event,
//!         shared: &mut Counter,
//!         ctx: &mut SimulationContext<'_, Event>,
//!     ) {
//!         if event == Event::Ping {
//!             shared.pings += 1;
//!             if shared.pings < 3 {
//!                 ctx.emit_self(SimDuration::from_micros(1), Event::Ping);
//!             }
//!             ctx.emit_self(SimDuration::ZERO, Event::Pong);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42, Counter::default());
//! let player = sim.add_component("player", PingPong);
//! sim.schedule(player, SimTime::from_micros(1), Event::Ping);
//! sim.run_until(SimTime::from_millis(1));
//! assert_eq!(sim.shared().pings, 3);
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use crate::engine::{EventId, EventQueue};
use crate::rng::SimRng;
use crate::time::SimTime;

/// Identifier of a registered simulation component. Returned by
/// [`Simulation::add_component`] and used as the destination of emitted
/// events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(usize);

impl ComponentId {
    /// The raw index value (useful for logging).
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index.
    ///
    /// Ids are assigned by [`Simulation::add_component`] in registration
    /// order starting at 0, so a driver with a fixed registration layout can
    /// pre-compute peer ids for components that reference each other
    /// cyclically (and should assert the layout with the returned ids).
    #[must_use]
    pub const fn from_raw(index: usize) -> Self {
        ComponentId(index)
    }
}

/// An event in flight: destination component plus user payload.
#[derive(Debug)]
struct Envelope<E> {
    dst: ComponentId,
    payload: E,
}

/// The per-component face of the simulation: clock access, event emission and
/// a deterministic private RNG stream.
///
/// A fresh context is constructed for every dispatched event, borrowing the
/// queue and the receiving component's RNG from the [`Simulation`].
pub struct SimulationContext<'a, E> {
    now: SimTime,
    self_id: ComponentId,
    queue: &'a mut EventQueue<Envelope<E>>,
    rng: &'a mut SimRng,
}

impl<E> SimulationContext<'_, E> {
    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component this context belongs to.
    #[must_use]
    pub fn id(&self) -> ComponentId {
        self.self_id
    }

    /// The component's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Emits an event to `dst` at absolute time `at`.
    pub fn emit_at(&mut self, dst: ComponentId, at: SimTime, payload: E) -> EventId {
        self.queue.schedule(at, Envelope { dst, payload })
    }

    /// Emits an event to `dst` after `delay`.
    pub fn emit(
        &mut self,
        dst: ComponentId,
        delay: crate::time::SimDuration,
        payload: E,
    ) -> EventId {
        self.emit_at(dst, self.now + delay, payload)
    }

    /// Emits a zero-delay event to `dst`, delivered at the current timestamp
    /// after all events already queued for this instant (FIFO).
    pub fn emit_now(&mut self, dst: ComponentId, payload: E) -> EventId {
        self.emit_at(dst, self.now, payload)
    }

    /// Emits an event to the component itself after `delay`.
    pub fn emit_self(&mut self, delay: crate::time::SimDuration, payload: E) -> EventId {
        self.emit(self.self_id, delay, payload)
    }

    /// Emits an event to the component itself at absolute time `at`.
    pub fn emit_self_at(&mut self, at: SimTime, payload: E) -> EventId {
        self.emit_at(self.self_id, at, payload)
    }

    /// Cancels a previously emitted event in O(1).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

/// A simulation component: consumes events addressed to it and may observe
/// every dispatch through the pre/post hooks.
///
/// Components receive `&mut` access to the shared state `S` and produce new
/// events through the [`SimulationContext`]. The hooks default to no-ops; a
/// telemetry component typically overrides them to attribute elapsed
/// simulated time to the power state that held during it *before* an event
/// mutates that state ([`EventHandler::on_pre_dispatch`]) and to sample
/// derived state after the mutation ([`EventHandler::on_post_dispatch`]).
pub trait EventHandler<E, S> {
    /// Delivers an event addressed to this component.
    fn on_event(&mut self, event: E, shared: &mut S, ctx: &mut SimulationContext<'_, E>);

    /// Whether this component wants its dispatch hooks invoked. Sampled once
    /// at registration time; only observing components pay the per-event
    /// hook cost, so the main loop stays O(observers) rather than
    /// O(components) per event. Components overriding
    /// [`EventHandler::on_pre_dispatch`] or [`EventHandler::on_post_dispatch`]
    /// must also override this to return `true`. An observer watches every
    /// event by default; the driver can narrow it to events addressed to
    /// specific components with [`Simulation::scope_observer`].
    fn observes_dispatch(&self) -> bool {
        false
    }

    /// Whether this observer wants the *pre*-dispatch hook. Defaults to
    /// [`EventHandler::observes_dispatch`]; a post-only observer (one whose
    /// [`EventHandler::on_pre_dispatch`] stays the default no-op) should
    /// override this to `false` so the main loop never pays a virtual call
    /// for the empty hook. Sampled once at registration time.
    fn observes_pre_dispatch(&self) -> bool {
        self.observes_dispatch()
    }

    /// Whether this observer wants the *post*-dispatch hook. Defaults to
    /// [`EventHandler::observes_dispatch`]; see
    /// [`EventHandler::observes_pre_dispatch`] for the narrowing rationale.
    fn observes_post_dispatch(&self) -> bool {
        self.observes_dispatch()
    }

    /// Called for every observing component immediately before an event is
    /// dispatched (the clock has already advanced to the event's timestamp).
    /// `dst` is the event's destination component, letting a scoped observer
    /// subscribed to several targets tell which one is about to run.
    fn on_pre_dispatch(&mut self, _now: SimTime, _dst: ComponentId, _shared: &mut S) {}

    /// Called for every observing component immediately after an event was
    /// dispatched. `dst` is the component that handled it.
    fn on_post_dispatch(&mut self, _now: SimTime, _dst: ComponentId, _shared: &mut S) {}
}

/// Registering an `Rc<RefCell<T>>` lets the caller keep a handle to the
/// component and inspect its private state after (or between) runs, in the
/// style of DSLab's shared component handles.
impl<E, S, T: EventHandler<E, S>> EventHandler<E, S> for Rc<RefCell<T>> {
    fn on_event(&mut self, event: E, shared: &mut S, ctx: &mut SimulationContext<'_, E>) {
        self.borrow_mut().on_event(event, shared, ctx);
    }

    fn observes_dispatch(&self) -> bool {
        self.borrow().observes_dispatch()
    }

    fn observes_pre_dispatch(&self) -> bool {
        self.borrow().observes_pre_dispatch()
    }

    fn observes_post_dispatch(&self) -> bool {
        self.borrow().observes_post_dispatch()
    }

    fn on_pre_dispatch(&mut self, now: SimTime, dst: ComponentId, shared: &mut S) {
        self.borrow_mut().on_pre_dispatch(now, dst, shared);
    }

    fn on_post_dispatch(&mut self, now: SimTime, dst: ComponentId, shared: &mut S) {
        self.borrow_mut().on_post_dispatch(now, dst, shared);
    }
}

/// The simulation driver: owns the clock, the event queue, the root RNG, the
/// shared state and the registered components, and runs the main loop.
///
/// Component storage is a struct-of-arrays (`names` / `rngs` / `handlers`
/// indexed by [`ComponentId`]) so the dispatch loop can borrow a handler,
/// the destination's RNG and the shared state simultaneously as disjoint
/// fields — no `Option` dance or per-event moves.
pub struct Simulation<E, S> {
    queue: EventQueue<Envelope<E>>,
    clock: SimTime,
    root_rng: SimRng,
    names: Vec<String>,
    rngs: Vec<SimRng>,
    handlers: Vec<Box<dyn EventHandler<E, S>>>,
    /// Per-component `(pre, post)` observation flags sampled at registration
    /// ([`EventHandler::observes_pre_dispatch`] /
    /// [`EventHandler::observes_post_dispatch`]); consulted when the
    /// observer is later scoped so each hook list only ever holds
    /// components with a non-default hook body.
    observes: Vec<(bool, bool)>,
    /// Indices of *global* observers: components whose observation flags
    /// were set at registration and that have not been narrowed with
    /// [`Simulation::scope_observer`]. These pay the hook cost on every
    /// dispatched event. Split by phase so a post-only observer costs
    /// nothing on the pre pass (and vice versa).
    observers_pre: Vec<usize>,
    observers_post: Vec<usize>,
    /// Per-destination observer lists: `scoped_pre[dst]` /
    /// `scoped_post[dst]` hold the indices of scoped observers whose hooks
    /// run when an event addressed to component `dst` is dispatched (see
    /// [`Simulation::scope_observer`]). Outer index is the destination
    /// component id; inner order is subscription order.
    scoped_pre: Vec<Vec<usize>>,
    scoped_post: Vec<Vec<usize>>,
    shared: S,
}

impl<E, S> Simulation<E, S> {
    /// Creates a simulation with the given root seed and shared state.
    #[must_use]
    pub fn new(seed: u64, shared: S) -> Self {
        Simulation {
            queue: EventQueue::new(),
            clock: SimTime::ZERO,
            root_rng: SimRng::from_seed(seed),
            names: Vec::new(),
            rngs: Vec::new(),
            handlers: Vec::new(),
            observes: Vec::new(),
            observers_pre: Vec::new(),
            observers_post: Vec::new(),
            scoped_pre: Vec::new(),
            scoped_post: Vec::new(),
            shared,
        }
    }

    /// Registers a component under a unique name and returns its id.
    ///
    /// The component's RNG stream is forked from the root seed by name, so
    /// registration order does not affect determinism.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered.
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        handler: impl EventHandler<E, S> + 'static,
    ) -> ComponentId {
        let name = name.into();
        let rng = self.root_rng.fork(&name);
        self.add_component_with_stream(name, handler, rng)
    }

    /// Registers a component under a unique name with an explicitly supplied
    /// RNG stream instead of the default root-seed-by-name fork.
    ///
    /// This decouples a component's *registration name* (which must be
    /// unique within the simulation) from its *randomness stream* (which the
    /// caller may want to derive from some other root). The cluster layer
    /// relies on this: node components are registered under prefixed names
    /// (`"node 1 nic"`, …) while their streams are forked from the node's
    /// own seed by the unprefixed label, so an N-node host simulation gives
    /// every node exactly the streams a standalone single-server simulation
    /// with the same node seed would (see [`SimRng::fork`], which is a pure
    /// function of `(parent seed, label)`).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered.
    pub fn add_component_with_stream(
        &mut self,
        name: impl Into<String>,
        handler: impl EventHandler<E, S> + 'static,
        rng: SimRng,
    ) -> ComponentId {
        let name = name.into();
        assert!(
            self.lookup(&name).is_none(),
            "component name {name:?} registered twice"
        );
        let index = self.handlers.len();
        let flags = (
            handler.observes_pre_dispatch(),
            handler.observes_post_dispatch(),
        );
        if flags.0 {
            self.observers_pre.push(index);
        }
        if flags.1 {
            self.observers_post.push(index);
        }
        self.observes.push(flags);
        self.names.push(name);
        self.rngs.push(rng);
        self.handlers.push(Box::new(handler));
        ComponentId(index)
    }

    /// Narrows an observing component's dispatch hooks to events addressed
    /// to `targets` (instead of every event in the simulation).
    ///
    /// By default an observer ([`EventHandler::observes_dispatch`] `true`)
    /// runs its pre/post hooks on **every** dispatched event. In a
    /// simulation hosting many independent sub-systems (e.g. the nodes of a
    /// cluster) that fans each event past every sub-system's observers, so
    /// the per-event cost grows with the host size even though only one
    /// sub-system's state can change per event. Scoping restores O(1)
    /// hooks per event: after this call the observer's hooks run only for
    /// events addressed to one of `targets`.
    ///
    /// Scoping is correct when everything the observer's hooks read can
    /// only be mutated by events addressed to `targets` — then every hook
    /// invocation this skips would have observed (and recorded) exactly the
    /// state it observed at the previous invocation. Use
    /// [`Simulation::add_observer_target`] to extend the set later (e.g.
    /// with a router component registered after the sub-system).
    ///
    /// Hook order per event: global observers first (registration order),
    /// then the destination's scoped observers (subscription order).
    ///
    /// # Panics
    ///
    /// Panics if `observer` was not registered as an observing component or
    /// has already been scoped.
    pub fn scope_observer(&mut self, observer: ComponentId, targets: &[ComponentId]) {
        let in_pre = self.observers_pre.iter().position(|&i| i == observer.0);
        let in_post = self.observers_post.iter().position(|&i| i == observer.0);
        assert!(
            in_pre.is_some() || in_post.is_some(),
            "component {:?} is not an unscoped dispatch observer",
            self.name(observer)
        );
        if let Some(pos) = in_pre {
            self.observers_pre.remove(pos);
        }
        if let Some(pos) = in_post {
            self.observers_post.remove(pos);
        }
        for &target in targets {
            self.add_scoped(observer.0, target);
        }
    }

    /// Additionally runs the (already scoped) observer's hooks for events
    /// addressed to `target`. See [`Simulation::scope_observer`].
    ///
    /// # Panics
    ///
    /// Panics if `observer` is still a global observer (scope it first) or
    /// is already subscribed to `target`.
    pub fn add_observer_target(&mut self, observer: ComponentId, target: ComponentId) {
        assert!(
            !self.observers_pre.contains(&observer.0) && !self.observers_post.contains(&observer.0),
            "component {:?} observes every event; scope it before adding targets",
            self.name(observer)
        );
        self.add_scoped(observer.0, target);
    }

    fn add_scoped(&mut self, observer: usize, target: ComponentId) {
        let (pre, post) = self.observes[observer];
        if self.scoped_pre.len() <= target.0 {
            self.scoped_pre.resize_with(target.0 + 1, Vec::new);
            self.scoped_post.resize_with(target.0 + 1, Vec::new);
        }
        assert!(
            !self.scoped_pre[target.0].contains(&observer)
                && !self.scoped_post[target.0].contains(&observer),
            "observer {observer} already subscribed to component {}",
            target.0
        );
        if pre {
            self.scoped_pre[target.0].push(observer);
        }
        if post {
            self.scoped_post[target.0].push(observer);
        }
    }

    /// Finds a component id by registration name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<ComponentId> {
        self.names.iter().position(|n| n == name).map(ComponentId)
    }

    /// The registration name of a component.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this simulation.
    #[must_use]
    pub fn name(&self, id: ComponentId) -> &str {
        &self.names[id.0]
    }

    /// The number of registered components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.handlers.len()
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.queue.delivered()
    }

    /// Snapshot of the event queue's always-on self-profiling counters.
    #[must_use]
    pub fn queue_counters(&self) -> crate::engine::QueueCounters {
        self.queue.counters()
    }

    /// Enables per-event-kind profiling on the underlying queue: `classify`
    /// maps each payload to a kind index in `0..kinds`. Purely observational —
    /// dispatch order and component behaviour are unaffected.
    pub fn enable_event_profile(&mut self, kinds: usize, classify: impl Fn(&E) -> usize + 'static)
    where
        E: 'static,
    {
        self.queue
            .enable_profile(kinds, move |env: &Envelope<E>| classify(&env.payload));
    }

    /// Per-event-kind counter rows, if [`Simulation::enable_event_profile`]
    /// was called.
    #[must_use]
    pub fn event_profile(&self) -> Option<&[crate::engine::KindCounters]> {
        self.queue.kind_counters()
    }

    /// Shared state, read-only.
    #[must_use]
    pub fn shared(&self) -> &S {
        &self.shared
    }

    /// Shared state, mutable (for bootstrap and result extraction).
    pub fn shared_mut(&mut self) -> &mut S {
        &mut self.shared
    }

    /// Consumes the simulation and returns the shared state.
    #[must_use]
    pub fn into_shared(self) -> S {
        self.shared
    }

    /// Forks a named RNG stream off the root seed (for driver-level draws
    /// that should not perturb component streams).
    #[must_use]
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.root_rng.fork(label)
    }

    /// Schedules an event from outside any component (bootstrap).
    pub fn schedule(&mut self, dst: ComponentId, at: SimTime, payload: E) -> EventId {
        self.queue.schedule(at, Envelope { dst, payload })
    }

    /// Schedules an event from outside any component with an explicit FIFO
    /// rank: at equal timestamps it orders as if it had been scheduled at
    /// simulated instant `inserted`. Partitioned-simulation drivers use this
    /// to replay cross-partition events with the scheduling rank they would
    /// have received in the sequential loop (see
    /// [`EventQueue::schedule_backdated`](crate::engine::EventQueue::schedule_backdated)).
    pub fn schedule_backdated(
        &mut self,
        dst: ComponentId,
        at: SimTime,
        inserted: SimTime,
        payload: E,
    ) -> EventId {
        self.queue
            .schedule_backdated(at, inserted, Envelope { dst, payload })
    }

    /// Cancels a previously scheduled event in O(1).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The `(timestamp, insertion instant)` key of the next pending event —
    /// the key same-timestamp FIFO order is ranked by.
    pub fn peek_key(&mut self) -> Option<(SimTime, SimTime)> {
        self.queue.peek_key()
    }

    /// Dispatches the next event: advances the clock, runs the pre-dispatch
    /// hook of every observer watching the destination (global observers
    /// plus the destination's scoped observers — see
    /// [`Simulation::scope_observer`]), delivers the event, then runs the
    /// same observers' post-dispatch hooks. Returns the event's timestamp,
    /// or `None` when the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if an event addresses an unregistered component.
    pub fn step(&mut self) -> Option<SimTime> {
        let (time, envelope) = self.queue.pop()?;
        self.clock = time;
        let dst = envelope.dst.0;
        assert!(
            dst < self.handlers.len(),
            "event addressed to unregistered component {dst}"
        );
        self.run_pre_hooks(time, envelope.dst);
        let mut ctx = SimulationContext {
            now: time,
            self_id: envelope.dst,
            queue: &mut self.queue,
            rng: &mut self.rngs[dst],
        };
        self.handlers[dst].on_event(envelope.payload, &mut self.shared, &mut ctx);
        self.run_post_hooks(time, envelope.dst);
        Some(time)
    }

    /// Runs the simulation until the queue drains or the next event's
    /// timestamp reaches `horizon` (events at or after the horizon stay
    /// queued; the clock stays at the last dispatched event). Returns the
    /// number of events dispatched.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut dispatched = 0;
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            self.step();
            dispatched += 1;
        }
        dispatched
    }

    // Global observers (registration order), then the destination's scoped
    // observers (subscription order). Observer sets never change mid-run, so
    // the two passes cover each watching observer once.
    fn run_pre_hooks(&mut self, now: SimTime, dst: ComponentId) {
        for idx in 0..self.observers_pre.len() {
            let i = self.observers_pre[idx];
            self.handlers[i].on_pre_dispatch(now, dst, &mut self.shared);
        }
        let scoped_count = self.scoped_pre.get(dst.0).map_or(0, Vec::len);
        for idx in 0..scoped_count {
            let i = self.scoped_pre[dst.0][idx];
            self.handlers[i].on_pre_dispatch(now, dst, &mut self.shared);
        }
    }

    fn run_post_hooks(&mut self, now: SimTime, dst: ComponentId) {
        for idx in 0..self.observers_post.len() {
            let i = self.observers_post[idx];
            self.handlers[i].on_post_dispatch(now, dst, &mut self.shared);
        }
        let scoped_count = self.scoped_post.get(dst.0).map_or(0, Vec::len);
        for idx in 0..scoped_count {
            let i = self.scoped_post[dst.0][idx];
            self.handlers[i].on_post_dispatch(now, dst, &mut self.shared);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Tick,
        Forward,
        Noise,
    }

    #[derive(Default)]
    struct Shared {
        ticks: u64,
        forwards: u64,
        pre_calls: u64,
        post_calls: u64,
        draws: Vec<u64>,
    }

    struct Ticker {
        peer: Option<ComponentId>,
    }

    impl EventHandler<Ev, Shared> for Ticker {
        fn on_event(
            &mut self,
            event: Ev,
            shared: &mut Shared,
            ctx: &mut SimulationContext<'_, Ev>,
        ) {
            match event {
                Ev::Tick => {
                    shared.ticks += 1;
                    if let Some(peer) = self.peer {
                        ctx.emit_now(peer, Ev::Forward);
                    }
                    if shared.ticks < 5 {
                        ctx.emit_self(SimDuration::from_micros(10), Ev::Tick);
                    }
                }
                Ev::Noise => shared.draws.push(ctx.rng().next_u64()),
                Ev::Forward => unreachable!("ticker never receives forwards"),
            }
        }
    }

    struct Sink;

    impl EventHandler<Ev, Shared> for Sink {
        fn on_event(
            &mut self,
            event: Ev,
            shared: &mut Shared,
            _ctx: &mut SimulationContext<'_, Ev>,
        ) {
            assert_eq!(event, Ev::Forward);
            shared.forwards += 1;
        }

        fn observes_dispatch(&self) -> bool {
            true
        }

        fn on_pre_dispatch(&mut self, _now: SimTime, _dst: ComponentId, shared: &mut Shared) {
            shared.pre_calls += 1;
        }

        fn on_post_dispatch(&mut self, _now: SimTime, _dst: ComponentId, shared: &mut Shared) {
            shared.post_calls += 1;
        }
    }

    fn build() -> (Simulation<Ev, Shared>, ComponentId, ComponentId) {
        let mut sim = Simulation::new(7, Shared::default());
        let sink = sim.add_component("sink", Sink);
        let ticker = sim.add_component("ticker", Ticker { peer: Some(sink) });
        (sim, ticker, sink)
    }

    #[test]
    fn events_route_to_their_destination() {
        let (mut sim, ticker, _sink) = build();
        sim.schedule(ticker, SimTime::from_micros(1), Ev::Tick);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.shared().ticks, 5);
        assert_eq!(sim.shared().forwards, 5);
        assert_eq!(sim.now(), SimTime::from_micros(41));
    }

    #[test]
    fn hooks_fire_once_per_dispatch() {
        let (mut sim, ticker, _sink) = build();
        sim.schedule(ticker, SimTime::from_micros(1), Ev::Tick);
        sim.run_until(SimTime::from_secs(1));
        let dispatched = sim.dispatched();
        assert_eq!(sim.shared().pre_calls, dispatched);
        assert_eq!(sim.shared().post_calls, dispatched);
    }

    #[test]
    fn event_profile_classifies_payloads_without_perturbing_the_run() {
        let run = |profile: bool| {
            let (mut sim, ticker, _sink) = build();
            if profile {
                sim.enable_event_profile(3, |e: &Ev| match e {
                    Ev::Tick => 0,
                    Ev::Forward => 1,
                    Ev::Noise => 2,
                });
            }
            sim.schedule(ticker, SimTime::from_micros(1), Ev::Tick);
            sim.run_until(SimTime::from_secs(1));
            sim
        };
        let plain = run(false);
        let profiled = run(true);
        assert_eq!(plain.shared().ticks, profiled.shared().ticks);
        assert_eq!(plain.dispatched(), profiled.dispatched());
        assert!(plain.event_profile().is_none());
        let kinds = profiled.event_profile().expect("profile enabled");
        assert_eq!(kinds[0].dispatched, 5, "five ticks");
        assert_eq!(kinds[1].dispatched, 5, "five forwards");
        assert_eq!(kinds[2].dispatched, 0);
        let counters = profiled.queue_counters();
        assert_eq!(counters.dispatched, profiled.dispatched());
        assert_eq!(
            counters.scheduled, 10,
            "bootstrap tick + 4 re-arms + 5 forwards"
        );
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        let (mut sim, ticker, _sink) = build();
        sim.schedule(ticker, SimTime::from_micros(1), Ev::Tick);
        // First tick at 1 us, second at 11 us: a horizon of 11 us must
        // dispatch only the first tick (and its zero-delay forward).
        let n = sim.run_until(SimTime::from_micros(11));
        assert_eq!(n, 2);
        assert_eq!(sim.shared().ticks, 1);
        assert!(sim.peek_time() == Some(SimTime::from_micros(11)));
    }

    #[test]
    fn component_rng_streams_are_deterministic_and_independent() {
        let run = |seed| {
            let mut sim = Simulation::new(seed, Shared::default());
            let ticker = sim.add_component("ticker", Ticker { peer: None });
            sim.schedule(ticker, SimTime::from_micros(1), Ev::Noise);
            sim.schedule(ticker, SimTime::from_micros(2), Ev::Noise);
            sim.run_until(SimTime::from_secs(1));
            sim.into_shared().draws
        };
        assert_eq!(run(42), run(42), "identical seeds, identical streams");
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn lookup_and_names_round_trip() {
        let (sim, ticker, sink) = build();
        assert_eq!(sim.lookup("ticker"), Some(ticker));
        assert_eq!(sim.lookup("sink"), Some(sink));
        assert_eq!(sim.lookup("nope"), None);
        assert_eq!(sim.name(ticker), "ticker");
        assert_eq!(sim.component_count(), 2);
    }

    #[test]
    fn explicit_streams_decouple_name_from_randomness() {
        // A component registered under any name but with a stream forked
        // from (seed, "ticker") must draw exactly what `add_component`'s
        // default name-fork would give a component named "ticker".
        let run = |explicit: bool| {
            let mut sim = Simulation::new(42, Shared::default());
            let ticker = if explicit {
                let rng = SimRng::from_seed(42).fork("ticker");
                sim.add_component_with_stream("prefixed ticker", Ticker { peer: None }, rng)
            } else {
                sim.add_component("ticker", Ticker { peer: None })
            };
            sim.schedule(ticker, SimTime::from_micros(1), Ev::Noise);
            sim.schedule(ticker, SimTime::from_micros(2), Ev::Noise);
            sim.run_until(SimTime::from_secs(1));
            sim.into_shared().draws
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn scoped_observers_fire_only_for_their_targets() {
        // Two tickers, one sink-observer scoped to ticker A: the hooks must
        // fire once per event addressed to A (pre + post), never for B.
        let mut sim = Simulation::new(7, Shared::default());
        let sink = sim.add_component("sink", Sink);
        let a = sim.add_component("a", Ticker { peer: None });
        let b = sim.add_component("b", Ticker { peer: None });
        sim.scope_observer(sink, &[a]);
        sim.schedule(a, SimTime::from_micros(1), Ev::Noise);
        sim.schedule(b, SimTime::from_micros(2), Ev::Noise);
        sim.schedule(b, SimTime::from_micros(3), Ev::Noise);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.shared().pre_calls, 1);
        assert_eq!(sim.shared().post_calls, 1);
    }

    #[test]
    fn observer_targets_can_be_extended() {
        let mut sim = Simulation::new(7, Shared::default());
        let sink = sim.add_component("sink", Sink);
        let a = sim.add_component("a", Ticker { peer: None });
        let b = sim.add_component("b", Ticker { peer: None });
        sim.scope_observer(sink, &[a]);
        sim.add_observer_target(sink, b);
        sim.schedule(a, SimTime::from_micros(1), Ev::Noise);
        sim.schedule(b, SimTime::from_micros(2), Ev::Noise);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.shared().pre_calls, 2);
        assert_eq!(sim.shared().post_calls, 2);
    }

    #[test]
    fn scoping_an_observer_to_all_components_matches_global_default() {
        // The scoped path must reproduce the global path exactly when the
        // scope covers every component (the standalone-server case).
        let run = |scope: bool| {
            let (mut sim, ticker, sink) = build();
            if scope {
                sim.scope_observer(sink, &[ticker, sink]);
            }
            sim.schedule(ticker, SimTime::from_micros(1), Ev::Tick);
            sim.run_until(SimTime::from_secs(1));
            (sim.shared().pre_calls, sim.shared().post_calls)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    #[should_panic(expected = "not an unscoped dispatch observer")]
    fn scoping_a_non_observer_panics() {
        let mut sim: Simulation<Ev, Shared> = Simulation::new(1, Shared::default());
        let ticker = sim.add_component("ticker", Ticker { peer: None });
        sim.scope_observer(ticker, &[ticker]);
    }

    #[test]
    #[should_panic(expected = "scope it before adding targets")]
    fn adding_targets_to_a_global_observer_panics() {
        let mut sim: Simulation<Ev, Shared> = Simulation::new(1, Shared::default());
        let sink = sim.add_component("sink", Sink);
        sim.add_observer_target(sink, sink);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_panic() {
        let mut sim: Simulation<Ev, Shared> = Simulation::new(1, Shared::default());
        sim.add_component("dup", Sink);
        sim.add_component("dup", Sink);
    }

    #[test]
    fn zero_delay_events_are_fifo_at_one_instant() {
        // The forward emitted during a tick is delivered after the tick
        // handler returns but at the same timestamp.
        let (mut sim, ticker, _sink) = build();
        sim.schedule(ticker, SimTime::from_micros(3), Ev::Tick);
        sim.step();
        assert_eq!(sim.shared().ticks, 1);
        assert_eq!(sim.shared().forwards, 0);
        assert_eq!(sim.peek_time(), Some(SimTime::from_micros(3)));
        sim.step();
        assert_eq!(sim.shared().forwards, 1);
    }
}
