//! Simulation time types.
//!
//! The entire reproduction operates at nanosecond granularity because the
//! paper's central claim is about *nanosecond-scale* package C-state
//! transitions (PC1A entry ≈ 18 ns, exit ≤ 150 ns) competing against
//! *microsecond-scale* idle periods and *millisecond-scale* measurement
//! windows. A `u64` nanosecond counter covers ~584 years of simulated time,
//! which is far more than any experiment needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in nanoseconds since simulation start.
///
/// `SimTime` is an absolute instant; [`SimDuration`] is a span between two
/// instants. The two types are kept distinct so that latency budgets cannot be
/// accidentally confused with absolute timestamps.
///
/// # Examples
///
/// ```
/// use apc_sim::time::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_micros(5);
/// assert_eq!(t1.as_nanos(), 5_000);
/// assert_eq!(t1 - t0, SimDuration::from_nanos(5_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// # Examples
///
/// ```
/// use apc_sim::time::SimDuration;
///
/// let d = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// assert!((d.as_secs_f64() - 2.5e-6).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable instant. Used as an "infinitely far away"
    /// sentinel for deadlines that are never expected to fire.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a floating point value.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The elapsed duration since an earlier instant.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is later than `self`
    /// instead of panicking; flows in the simulator occasionally race by a
    /// cycle and a saturating difference keeps accounting robust.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// The duration in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (truncated) whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in fractional microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiplies the duration by a non-negative floating point factor,
    /// rounding to the nearest nanosecond.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(7).as_nanos(), 7_000_000);
        assert_eq!(SimDuration::from_secs(7).as_nanos(), 7_000_000_000);
    }

    #[test]
    fn arithmetic_is_saturating() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_nanos(10), SimTime::MAX);
        let d = SimDuration::from_nanos(5);
        assert_eq!(d - SimDuration::from_nanos(10), SimDuration::ZERO);
        assert_eq!(SimTime::ZERO - SimDuration::from_nanos(1), SimTime::ZERO);
    }

    #[test]
    fn time_difference_yields_duration() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a - b, SimDuration::from_micros(6));
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
    }

    #[test]
    fn float_conversions_round_trip() {
        let d = SimDuration::from_secs_f64(1.5e-6);
        assert_eq!(d.as_nanos(), 1_500);
        assert!((d.as_micros_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(2.5).as_nanos(), 2_500);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
    }

    #[test]
    fn min_max_and_mul() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a * 3, SimDuration::from_nanos(30));
        assert_eq!(b / 2, SimDuration::from_nanos(10));
        assert_eq!(a.mul_f64(2.5).as_nanos(), 25);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(6));
    }

    #[test]
    fn std_duration_conversion() {
        let d: std::time::Duration = SimDuration::from_micros(3).into();
        assert_eq!(d.as_nanos(), 3_000);
    }
}
