//! Streaming statistics, histograms and percentile estimation.
//!
//! Every figure in the paper's evaluation reduces a simulated timeline to a
//! small set of summary statistics: mean/percentile latencies (Fig. 5, 7c),
//! residency fractions (Fig. 6a/b, 8a, 9a), idle-period length distributions
//! (Fig. 6c) and average power (Fig. 7a/b, 8b, 9b). The types in this module
//! are the shared reduction machinery.

use std::fmt;

use crate::time::SimDuration;

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use apc_sim::stats::StreamingStats;
///
/// let mut s = StreamingStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 4.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(6.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0 when fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Records a full set of samples and answers percentile queries exactly.
///
/// The evaluation runs produce at most a few million latency samples, so an
/// exact recorder is affordable and avoids any estimator bias in tail-latency
/// comparisons (Fig. 5).
#[derive(Debug, Clone, Default)]
pub struct PercentileRecorder {
    samples: Vec<f64>,
    sorted: bool,
}

impl PercentileRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        PercentileRecorder {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one sample. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean of the samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) using nearest-rank interpolation.
    /// Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite samples are filtered"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            Some(self.samples[lo])
        } else {
            let frac = pos - lo as f64;
            Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
        }
    }

    /// Convenience accessor for the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience accessor for the 99th percentile (the paper's tail metric).
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// A histogram over durations with logarithmically spaced bucket boundaries.
///
/// Mirrors the presentation of Fig. 6(c): "what fraction of fully-idle
/// periods fall between 20 µs and 200 µs?".
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    /// Upper bounds (inclusive) of each bucket, ascending. A final implicit
    /// overflow bucket catches everything larger.
    bounds: Vec<SimDuration>,
    counts: Vec<u64>,
    overflow: u64,
    total_duration: SimDuration,
}

impl DurationHistogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn new(bounds: &[SimDuration]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        DurationHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            total_duration: SimDuration::ZERO,
        }
    }

    /// A standard set of log-spaced bounds from 1 µs to 10 ms, suitable for
    /// idle-period distributions.
    #[must_use]
    pub fn idle_period_default() -> Self {
        let bounds: Vec<SimDuration> = [
            1u64, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000,
        ]
        .into_iter()
        .map(SimDuration::from_micros)
        .collect();
        DurationHistogram::new(&bounds)
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.total_duration += d;
        for (i, b) in self.bounds.iter().enumerate() {
            if d <= *b {
                self.counts[i] += 1;
                return;
            }
        }
        self.overflow += 1;
    }

    /// Total number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// Sum of all recorded durations.
    #[must_use]
    pub fn total_duration(&self) -> SimDuration {
        self.total_duration
    }

    /// Iterator over `(upper_bound, count)` pairs, excluding the overflow
    /// bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (SimDuration, u64)> + '_ {
        self.bounds.iter().copied().zip(self.counts.iter().copied())
    }

    /// Count of durations exceeding the largest bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of recorded durations that fall inside `[lo, hi]`, judged by
    /// bucket upper bounds (buckets whose upper bound lies in the range are
    /// counted). Returns 0 when empty.
    #[must_use]
    pub fn fraction_between(&self, lo: SimDuration, hi: SimDuration) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let in_range: u64 = self
            .buckets()
            .filter(|(bound, _)| *bound > lo && *bound <= hi)
            .map(|(_, c)| c)
            .sum();
        in_range as f64 / total as f64
    }
}

impl fmt::Display for DurationHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.count().max(1);
        let mut lower = SimDuration::ZERO;
        for (bound, count) in self.buckets() {
            writeln!(
                f,
                "{:>10} - {:>10}  {:>8}  {:>6.2}%",
                lower.to_string(),
                bound.to_string(),
                count,
                100.0 * count as f64 / total as f64
            )?;
            lower = bound;
        }
        writeln!(
            f,
            "{:>10} +             {:>8}  {:>6.2}%",
            lower.to_string(),
            self.overflow,
            100.0 * self.overflow as f64 / total as f64
        )
    }
}

/// A simple weighted-average accumulator for time-weighted quantities
/// (e.g. average power = energy / time).
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedMean {
    weighted_sum: f64,
    weight: f64,
}

impl WeightedMean {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        WeightedMean::default()
    }

    /// Adds `value` with the given non-negative `weight`.
    pub fn add(&mut self, value: f64, weight: f64) {
        if weight <= 0.0 || !value.is_finite() {
            return;
        }
        self.weighted_sum += value * weight;
        self.weight += weight;
    }

    /// The weighted mean (0 when no weight has been added).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.weight <= 0.0 {
            0.0
        } else {
            self.weighted_sum / self.weight
        }
    }

    /// Total accumulated weight.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_stats_basic_moments() {
        let mut s = StreamingStats::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
        assert!((s.sum() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_stats_ignores_non_finite() {
        let mut s = StreamingStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn streaming_stats_merge_matches_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut all = StreamingStats::new();
        for &x in &data {
            all.record(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for (i, &x) in data.iter().enumerate() {
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_recorder_exact_quantiles() {
        let mut r = PercentileRecorder::new();
        for x in (1..=100).rev() {
            r.record(f64::from(x));
        }
        assert_eq!(r.count(), 100);
        assert!((r.median().unwrap() - 50.5).abs() < 1e-9);
        assert!((r.quantile(0.0).unwrap() - 1.0).abs() < 1e-9);
        assert!((r.quantile(1.0).unwrap() - 100.0).abs() < 1e-9);
        assert!((r.p99().unwrap() - 99.01).abs() < 0.02);
        assert!((r.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_recorder_empty_is_none() {
        let mut r = PercentileRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.mean(), 0.0);
    }

    #[test]
    fn duration_histogram_buckets_and_fractions() {
        let mut h = DurationHistogram::idle_period_default();
        // 6 samples in 20–200 µs, 4 outside.
        for us in [25u64, 30, 60, 100, 150, 190] {
            h.record(SimDuration::from_micros(us));
        }
        for us in [2u64, 5, 500, 20_000] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.overflow(), 1);
        let frac = h.fraction_between(SimDuration::from_micros(20), SimDuration::from_micros(200));
        assert!((frac - 0.6).abs() < 1e-9, "fraction {frac}");
        assert!(h.total_duration() > SimDuration::from_millis(20));
        let rendered = h.to_string();
        assert!(rendered.contains('%'));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn duration_histogram_rejects_unsorted_bounds() {
        let _ =
            DurationHistogram::new(&[SimDuration::from_micros(10), SimDuration::from_micros(5)]);
    }

    #[test]
    fn weighted_mean_weights_properly() {
        let mut w = WeightedMean::new();
        w.add(10.0, 1.0);
        w.add(20.0, 3.0);
        assert!((w.mean() - 17.5).abs() < 1e-12);
        assert!((w.total_weight() - 4.0).abs() < 1e-12);
        w.add(1000.0, 0.0); // ignored
        w.add(f64::NAN, 5.0); // ignored
        assert!((w.mean() - 17.5).abs() < 1e-12);
    }
}
