//! Probability distributions for workload modelling.
//!
//! The workload generators (crate `apc-workloads`) compose these primitives
//! into arrival processes and service-time models. All distributions draw
//! from the deterministic [`SimRng`] so experiments are reproducible.

use crate::rng::SimRng;

/// A one-dimensional continuous distribution over non-negative values.
///
/// Implementors return samples in whatever unit the caller established
/// (the workload layer uses nanoseconds).
pub trait Distribution: std::fmt::Debug + Send + Sync {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The analytic (or configured) mean of the distribution, used by load
    /// calculators to translate a target utilization into a request rate.
    fn mean(&self) -> f64;
}

/// A distribution that always returns the same value.
///
/// # Examples
///
/// ```
/// use apc_sim::dist::{Constant, Distribution};
/// use apc_sim::rng::SimRng;
///
/// let d = Constant::new(5.0);
/// assert_eq!(d.sample(&mut SimRng::from_seed(1)), 5.0);
/// assert_eq!(d.mean(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    value: f64,
}

impl Constant {
    /// Creates a degenerate distribution at `value` (clamped to `>= 0`).
    #[must_use]
    pub fn new(value: f64) -> Self {
        Constant {
            value: value.max(0.0),
        }
    }
}

impl Distribution for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
}

/// A uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution; the bounds are swapped if reversed and
    /// clamped to be non-negative.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        Uniform {
            lo: lo.max(0.0),
            hi: hi.max(0.0),
        }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform_range(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// An exponential distribution parameterised by its mean.
///
/// Used for memoryless arrival gaps and as a building block of the
/// hyper-exponential service models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean (clamped to a
    /// tiny positive value to avoid degenerate rates).
    #[must_use]
    pub fn new(mean: f64) -> Self {
        Exponential {
            mean: mean.max(f64::MIN_POSITIVE),
        }
    }

    /// Creates an exponential distribution from a rate (events per unit).
    #[must_use]
    pub fn from_rate(rate: f64) -> Self {
        Exponential::new(1.0 / rate.max(f64::MIN_POSITIVE))
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.exponential(self.mean)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// A log-normal distribution parameterised by the underlying normal's
/// `mu`/`sigma`.
///
/// Log-normal service times are the standard model for key-value store
/// request processing (most requests are fast, a long tail is slow).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            mu,
            sigma: sigma.abs(),
        }
    }

    /// Creates a log-normal with the given arithmetic mean and coefficient of
    /// variation (`cv = stddev / mean`).
    ///
    /// This is the most convenient constructor for workload calibration:
    /// "mean service time 20 µs with cv 0.7".
    #[must_use]
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        let mean = mean.max(f64::MIN_POSITIVE);
        let cv = cv.abs();
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// A bounded Pareto distribution (heavy tail with a cap).
///
/// Used to model the occasional very large request (e.g. Memcached multi-get
/// or an OLTP transaction that touches many rows) without letting a single
/// sample dominate a finite simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    shape: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto with shape `alpha` on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `hi <= lo`, or `alpha <= 0`.
    #[must_use]
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0, "lower bound must be positive");
        assert!(hi > lo, "upper bound must exceed lower bound");
        assert!(alpha > 0.0, "shape must be positive");
        BoundedPareto {
            shape: alpha,
            lo,
            hi,
        }
    }
}

impl Distribution for BoundedPareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse-CDF of the bounded Pareto.
        let u = rng.uniform();
        let la = self.lo.powf(self.shape);
        let ha = self.hi.powf(self.shape);
        let x = (-(u * (ha - la) - ha) / (ha * la)).powf(-1.0 / self.shape);
        x.clamp(self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        let a = self.shape;
        let (l, h) = (self.lo, self.hi);
        if (a - 1.0).abs() < 1e-12 {
            // alpha == 1 limit.
            (h / l).ln() * l * h / (h - l)
        } else {
            (l.powf(a) / (1.0 - (l / h).powf(a)))
                * (a / (a - 1.0))
                * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
        }
    }
}

/// A discrete empirical distribution over weighted values.
///
/// Useful for modelling request-class mixes such as the Facebook ETC
/// GET/SET ratio or the sysbench OLTP read/write mix.
#[derive(Debug, Clone)]
pub struct Empirical {
    values: Vec<f64>,
    cumulative: Vec<f64>,
    mean: f64,
}

impl Empirical {
    /// Builds an empirical distribution from `(value, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or all weights are non-positive.
    #[must_use]
    pub fn new(pairs: &[(f64, f64)]) -> Self {
        assert!(!pairs.is_empty(), "empirical distribution needs samples");
        let total: f64 = pairs.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "total weight must be positive");
        let mut values = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        let mut mean = 0.0;
        for (v, w) in pairs {
            let w = w.max(0.0) / total;
            acc += w;
            values.push(*v);
            cumulative.push(acc);
            mean += v * w;
        }
        // Guard against floating point drift.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Empirical {
            values,
            cumulative,
            mean,
        }
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.uniform();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.cumulative.len() - 1);
        self.values[idx]
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// A two-component mixture: with probability `p` sample from `a`, otherwise
/// from `b`.
///
/// This captures bimodal service behaviour (e.g. cache hit vs. miss).
#[derive(Debug)]
pub struct Mixture<A, B> {
    p: f64,
    a: A,
    b: B,
}

impl<A: Distribution, B: Distribution> Mixture<A, B> {
    /// Creates a mixture choosing `a` with probability `p` (clamped to
    /// `[0, 1]`) and `b` otherwise.
    #[must_use]
    pub fn new(p: f64, a: A, b: B) -> Self {
        Mixture {
            p: p.clamp(0.0, 1.0),
            a,
            b,
        }
    }
}

impl<A: Distribution, B: Distribution> Distribution for Mixture<A, B> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        if rng.chance(self.p) {
            self.a.sample(rng)
        } else {
            self.b.sample(rng)
        }
    }
    fn mean(&self) -> f64 {
        self.p * self.a.mean() + (1.0 - self.p) * self.b.mean()
    }
}

/// A distribution shifted by a constant offset (e.g. a fixed protocol
/// processing cost added to a variable body).
#[derive(Debug)]
pub struct Shifted<D> {
    offset: f64,
    inner: D,
}

impl<D: Distribution> Shifted<D> {
    /// Adds `offset` (clamped to `>= 0`) to every sample of `inner`.
    #[must_use]
    pub fn new(offset: f64, inner: D) -> Self {
        Shifted {
            offset: offset.max(0.0),
            inner,
        }
    }
}

impl<D: Distribution> Distribution for Shifted<D> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.offset + self.inner.sample(rng)
    }
    fn mean(&self) -> f64 {
        self.offset + self.inner.mean()
    }
}

impl Distribution for Box<dyn Distribution> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.as_ref().sample(rng)
    }
    fn mean(&self) -> f64 {
        self.as_ref().mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean<D: Distribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_and_uniform() {
        let c = Constant::new(4.0);
        assert_eq!(empirical_mean(&c, 10, 1), 4.0);
        let u = Uniform::new(10.0, 20.0);
        let m = empirical_mean(&u, 40_000, 2);
        assert!((m - 15.0).abs() < 0.2);
        // Reversed bounds are fixed up.
        let r = Uniform::new(20.0, 10.0);
        assert_eq!(r.mean(), 15.0);
    }

    #[test]
    fn exponential_matches_mean() {
        let e = Exponential::new(100.0);
        let m = empirical_mean(&e, 60_000, 3);
        assert!((m - 100.0).abs() / 100.0 < 0.05);
        let r = Exponential::from_rate(0.01);
        assert!((r.mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_from_mean_cv_matches_mean() {
        let d = LogNormal::from_mean_cv(50.0, 0.8);
        assert!((d.mean() - 50.0).abs() < 1e-9);
        let m = empirical_mean(&d, 120_000, 4);
        assert!((m - 50.0).abs() / 50.0 < 0.05, "observed {m}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(1.3, 10.0, 1000.0);
        let mut rng = SimRng::from_seed(5);
        for _ in 0..20_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=1000.0).contains(&x));
        }
        let m = empirical_mean(&d, 200_000, 6);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.1,
            "mean {m} vs {}",
            d.mean()
        );
    }

    #[test]
    #[should_panic(expected = "upper bound must exceed lower bound")]
    fn bounded_pareto_rejects_bad_bounds() {
        let _ = BoundedPareto::new(1.0, 10.0, 5.0);
    }

    #[test]
    fn empirical_respects_weights() {
        let d = Empirical::new(&[(1.0, 3.0), (10.0, 1.0)]);
        assert!((d.mean() - 3.25).abs() < 1e-12);
        let mut rng = SimRng::from_seed(7);
        let n = 40_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1.0).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "empirical distribution needs samples")]
    fn empirical_rejects_empty() {
        let _ = Empirical::new(&[]);
    }

    #[test]
    fn mixture_and_shifted_compose() {
        let hit = Constant::new(10.0);
        let miss = Constant::new(100.0);
        let d = Mixture::new(0.9, hit, miss);
        assert!((d.mean() - 19.0).abs() < 1e-12);
        let m = empirical_mean(&d, 50_000, 8);
        assert!((m - 19.0).abs() < 1.0);

        let s = Shifted::new(5.0, Constant::new(1.0));
        assert_eq!(s.mean(), 6.0);
        assert_eq!(empirical_mean(&s, 10, 9), 6.0);
    }

    #[test]
    fn boxed_distribution_is_usable() {
        let d: Box<dyn Distribution> = Box::new(Constant::new(2.0));
        assert_eq!(d.mean(), 2.0);
        assert_eq!(empirical_mean(&d, 5, 10), 2.0);
    }
}
