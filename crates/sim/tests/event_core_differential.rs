//! Differential test suite for the event core: the production timer-wheel
//! [`EventQueue`] against the reference binary-heap [`HeapEventQueue`],
//! driven in lockstep through randomized interleavings of every queue
//! operation.
//!
//! The two implementations promise the *same delivery contract* (see
//! `src/engine/mod.rs`): non-decreasing timestamps, FIFO tie-break by
//! scheduling order, O(1) cancellation with exact `bool` results, and
//! causality clamping of past timestamps to the queue's current time. Each
//! scenario here applies an identical operation sequence to both queues and
//! asserts every observable — popped `(time, payload)` pairs, `peek_time`,
//! `len`, `now`, `delivered`, `cancel` return values — stays bit-identical
//! throughout, so any behavioural drift in the wheel (cursor advance,
//! overflow-heap demotion, slab reuse, batch staging) is caught at the exact
//! operation that introduced it.
//!
//! Randomness comes from the crate's own deterministic xoshiro streams
//! ([`SimRng`]), so every failure reproduces from the seed printed in the
//! assertion message.

use apc_sim::engine::{EventId, EventQueue, HeapEventId, HeapEventQueue};
use apc_sim::rng::SimRng;
use apc_sim::SimTime;

use std::collections::HashMap;

/// Drives both queues through one identical operation and checks every
/// observable the operation exposes.
struct Lockstep {
    wheel: EventQueue<u64>,
    heap: HeapEventQueue<u64>,
    /// Live (not yet popped or cancelled) events by payload.
    live: HashMap<u64, (EventId, HeapEventId)>,
    /// A bounded pool of dead ids for stale-cancel probes.
    dead: Vec<(EventId, HeapEventId)>,
    next_payload: u64,
    seed: u64,
}

impl Lockstep {
    fn new(seed: u64) -> Self {
        Lockstep {
            wheel: EventQueue::new(),
            heap: HeapEventQueue::new(),
            live: HashMap::new(),
            dead: Vec::new(),
            next_payload: 0,
            seed,
        }
    }

    fn schedule(&mut self, at: SimTime) {
        let payload = self.next_payload;
        self.next_payload += 1;
        let w = self.wheel.schedule(at, payload);
        let h = self.heap.schedule(at, payload);
        self.live.insert(payload, (w, h));
        self.check_observables("schedule");
    }

    fn pop(&mut self) {
        let w = self.wheel.pop();
        let h = self.heap.pop();
        assert_eq!(
            w, h,
            "pop diverged (seed {}): wheel {w:?} vs heap {h:?}",
            self.seed
        );
        if let Some((_, payload)) = w {
            let ids = self
                .live
                .remove(&payload)
                .expect("popped a payload that was never scheduled or already left");
            self.push_dead(ids);
        }
        self.check_observables("pop");
    }

    fn cancel_live(&mut self, rng: &mut SimRng) {
        if self.live.is_empty() {
            return;
        }
        // Deterministic pick: order the live payloads, then index.
        let mut payloads: Vec<u64> = self.live.keys().copied().collect();
        payloads.sort_unstable();
        let payload = payloads[rng.index(payloads.len())];
        let (w, h) = self.live.remove(&payload).expect("picked from live set");
        let cw = self.wheel.cancel(w);
        let ch = self.heap.cancel(h);
        assert_eq!(
            cw, ch,
            "live-cancel result diverged (seed {}): wheel {cw} vs heap {ch}",
            self.seed
        );
        assert!(
            cw,
            "cancelling a live event must succeed (seed {})",
            self.seed
        );
        self.push_dead((w, h));
        self.check_observables("cancel_live");
    }

    fn cancel_stale(&mut self, rng: &mut SimRng) {
        if self.dead.is_empty() {
            return;
        }
        let (w, h) = self.dead[rng.index(self.dead.len())];
        let cw = self.wheel.cancel(w);
        let ch = self.heap.cancel(h);
        assert_eq!(
            cw, ch,
            "stale-cancel result diverged (seed {}): wheel {cw} vs heap {ch}",
            self.seed
        );
        assert!(
            !cw,
            "cancelling a dead event must report false (seed {})",
            self.seed
        );
        self.check_observables("cancel_stale");
    }

    fn push_dead(&mut self, ids: (EventId, HeapEventId)) {
        // Bound the pool so slab slots get recycled underneath the stale ids,
        // exercising the generation tags.
        if self.dead.len() >= 64 {
            self.dead.remove(0);
        }
        self.dead.push(ids);
    }

    fn check_observables(&mut self, op: &str) {
        let seed = self.seed;
        assert_eq!(
            self.wheel.len(),
            self.heap.len(),
            "len diverged after {op} (seed {seed})"
        );
        assert_eq!(
            self.wheel.is_empty(),
            self.heap.is_empty(),
            "is_empty diverged after {op} (seed {seed})"
        );
        assert_eq!(
            self.wheel.now(),
            self.heap.now(),
            "now diverged after {op} (seed {seed})"
        );
        assert_eq!(
            self.wheel.delivered(),
            self.heap.delivered(),
            "delivered diverged after {op} (seed {seed})"
        );
        assert_eq!(
            self.wheel.peek_time(),
            self.heap.peek_time(),
            "peek_time diverged after {op} (seed {seed})"
        );
    }

    fn drain(&mut self) {
        while !self.wheel.is_empty() || !self.heap.is_empty() {
            self.pop();
        }
        assert!(self.live.is_empty(), "drain left live entries behind");
    }
}

/// Picks a schedule timestamp that exercises every placement class the wheel
/// has: the current slot, near slots, higher levels, the overflow heap, and
/// the causality clamp (a past timestamp).
fn pick_time(rng: &mut SimRng, now: SimTime) -> SimTime {
    let base = now.as_nanos();
    match rng.index(8) {
        // Same-timestamp burst fodder: exactly `now`.
        0 => SimTime::from_nanos(base),
        // Causality clamp: strictly in the past (when possible).
        1 => SimTime::from_nanos(base.saturating_sub(1 + rng.next_u64() % 1_000_000)),
        // First-level slots (< 64 ns).
        2 => SimTime::from_nanos(base + rng.next_u64() % 64),
        // Mid-level slots (up to ~4 µs .. ~17 min across levels).
        3 => SimTime::from_nanos(base + rng.next_u64() % 4_096),
        4 => SimTime::from_nanos(base + rng.next_u64() % 1_000_000_000),
        5 => SimTime::from_nanos(base + rng.next_u64() % (1 << 40)),
        // Beyond the wheel span (2^42 ns): lands in the overflow heap.
        6 => SimTime::from_nanos(base + (1 << 42) + rng.next_u64() % (1 << 44)),
        // Far future: deep overflow, later demoted back into the wheel.
        _ => SimTime::from_nanos(base.saturating_add(rng.next_u64() % (1 << 50))),
    }
}

/// The main property: under a long randomized interleaving of schedule /
/// cancel / stale-cancel / pop, every observable of the two queues stays
/// bit-identical, and the final drain yields the same delivery sequence.
#[test]
fn randomized_interleavings_stay_bit_identical() {
    for seed in [0x5eed_0001_u64, 0xdead_beef, 0x0123_4567_89ab_cdef, 42] {
        let mut rng = SimRng::from_seed(seed);
        let mut lock = Lockstep::new(seed);
        for _ in 0..20_000 {
            let now = lock.wheel.now();
            match rng.index(10) {
                // Scheduling dominates so the queues grow deep enough to
                // keep several wheel levels and the overflow heap populated.
                0..=4 => {
                    let at = pick_time(&mut rng, now);
                    lock.schedule(at);
                }
                5..=7 => lock.pop(),
                8 => lock.cancel_live(&mut rng),
                _ => lock.cancel_stale(&mut rng),
            }
        }
        lock.drain();
    }
}

/// Same-timestamp bursts: many events at one instant must come back in FIFO
/// scheduling order from both queues (the wheel's batched dispatch must not
/// reorder ties), including when cancellations punch holes in the batch.
#[test]
fn same_timestamp_bursts_preserve_fifo_order() {
    let seed = 0xba7c4_u64;
    let mut rng = SimRng::from_seed(seed);
    let mut lock = Lockstep::new(seed);
    for round in 0..200u64 {
        let at = SimTime::from_nanos(lock.wheel.now().as_nanos() + rng.next_u64() % 10_000);
        let burst = 2 + rng.index(30);
        for _ in 0..burst {
            lock.schedule(at);
        }
        // Punch a few holes, then deliver the whole batch.
        for _ in 0..rng.index(3) {
            lock.cancel_live(&mut rng);
        }
        for _ in 0..burst {
            lock.pop();
        }
        // Every few rounds, fully drain to restart from an empty queue.
        if round % 31 == 0 {
            lock.drain();
        }
    }
    lock.drain();
}

/// Causality clamping: events scheduled into the past are delivered at the
/// queue's current time, in scheduling order, identically by both queues.
#[test]
fn past_timestamps_clamp_identically() {
    let seed = 0xc1a_u64;
    let mut rng = SimRng::from_seed(seed);
    let mut lock = Lockstep::new(seed);
    // Advance both queues to a non-zero time first.
    lock.schedule(SimTime::from_micros(5));
    lock.pop();
    for _ in 0..2_000 {
        let now = lock.wheel.now().as_nanos();
        let at = SimTime::from_nanos(now.saturating_sub(rng.next_u64() % 10_000_000));
        lock.schedule(at);
        if rng.chance(0.5) {
            lock.pop();
        }
    }
    lock.drain();
}

/// Cancel/rearm churn at a bounded queue depth: slab slots are recycled many
/// times over, so stale ids from long ago must keep reporting `false` (the
/// generation tag does its job) while the queues stay observably identical.
#[test]
fn cancel_rearm_churn_recycles_slots_identically() {
    let seed = 0x5ab_u64;
    let mut rng = SimRng::from_seed(seed);
    let mut lock = Lockstep::new(seed);
    for _ in 0..5_000 {
        let now = lock.wheel.now();
        if lock.live.len() < 16 {
            let at = pick_time(&mut rng, now);
            lock.schedule(at);
        } else {
            lock.cancel_live(&mut rng);
        }
        match rng.index(4) {
            0 => lock.pop(),
            1 => lock.cancel_stale(&mut rng),
            _ => {}
        }
    }
    lock.drain();
}
