//! # `apc` — AgilePkgC reproduction facade
//!
//! One-stop crate re-exporting the whole public API of the AgilePkgC (APC)
//! reproduction, so applications and experiments can depend on a single
//! crate:
//!
//! * [`sim`] — discrete-event engine, distributions, statistics;
//! * [`soc`] — the Skylake-SP class SoC structural model;
//! * [`power`] — calibrated power model, energy accounting, RAPL facade;
//! * [`pmu`] — baseline power management (idle governor, GPMU, PC6);
//! * [`core`] — the APC architecture (APMU, PC1A, IOSM, CLMR, latency /
//!   power / area models);
//! * [`workloads`] — Memcached/Kafka/MySQL load generators;
//! * [`telemetry`] — residency, idle-period and latency telemetry;
//! * [`trace`] — request-span tracing, head sampling and the engine
//!   self-profiler (Chrome-trace export lives in [`analysis`]);
//! * [`network`] — link/topology model and the cluster network fabric
//!   configuration (flat, two-tier, fat-tree);
//! * [`server`] — the full-system server simulation;
//! * [`analysis`] — Eq. 1 savings model, performance-impact model, report
//!   formatting, deterministic JSON/CSV export.
//!
//! The `apc-cli` binary (not re-exported: it is an application, not a
//! library layer) runs declarative experiment specs through all of the
//! above — see the "Experiment runner" section of `docs/ARCHITECTURE.md`.
//!
//! # Quick start
//!
//! ```
//! use apc::prelude::*;
//!
//! // Simulate 20 ms of Memcached at 10 K QPS on the APC-enhanced server.
//! let config = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(20));
//! let result = run_experiment(config, WorkloadSpec::memcached_etc(), 10_000.0);
//! assert!(result.avg_soc_power.as_f64() > 10.0);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

// Compile and run the code examples in docs/ARCHITECTURE.md and
// docs/REPRODUCING.md as doctests so the guides cannot drift from the
// real API (shell snippets in ```bash fences are left alone).
#[cfg(doctest)]
#[doc = include_str!("../../../docs/ARCHITECTURE.md")]
pub struct ArchitectureGuide;

#[cfg(doctest)]
#[doc = include_str!("../../../docs/REPRODUCING.md")]
pub struct ReproducingGuide;

pub use apc_analysis as analysis;
pub use apc_core as core;
pub use apc_network as network;
pub use apc_pmu as pmu;
pub use apc_power as power;
pub use apc_server as server;
pub use apc_sim as sim;
pub use apc_soc as soc;
pub use apc_telemetry as telemetry;
pub use apc_trace as trace;
pub use apc_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use apc_analysis::export::{
        cluster_result_json, fleet_result_json, run_result_json, timeseries_csv, JsonValue,
    };
    pub use apc_analysis::impact::ImpactInputs;
    pub use apc_analysis::report::TextTable;
    pub use apc_analysis::savings::{idle_savings, SavingsInputs};
    pub use apc_core::apmu::{Apmu, ApmuState, WakeCause};
    pub use apc_core::area::ApcAreaModel;
    pub use apc_core::latency::Pc1aLatencyModel;
    pub use apc_core::power::Pc1aPowerEstimator;
    pub use apc_network::{NetworkConfig, NetworkStats, Topology, TopologyKind};
    pub use apc_pmu::config::PlatformConfig;
    pub use apc_power::budget::PackageStatePower;
    pub use apc_power::model::PowerModel;
    pub use apc_power::units::{Joules, Watts};
    pub use apc_server::balancer::{RoutingPolicy, RoutingPolicyKind};
    pub use apc_server::chain::{
        run_chain_experiment, ChainFleet, ChainMember, ChainResult, ChainSimulation, RequestGraph,
        Tier,
    };
    pub use apc_server::cluster::{
        run_cluster_experiment, ClusterFleet, ClusterMember, ClusterResult, ClusterSimulation,
    };
    pub use apc_server::config::ServerConfig;
    pub use apc_server::fleet::{Fleet, FleetMember, FleetResult};
    pub use apc_server::node::ServerNode;
    pub use apc_server::result::RunResult;
    pub use apc_server::scenario::{
        ChainScenario, ClusterScenario, MemberGroup, Scenario, ScenarioResult, TrafficPattern,
        WorkloadKind,
    };
    pub use apc_server::sim::{run_experiment, ServerSimulation};
    pub use apc_sim::component::{EventHandler, Simulation, SimulationContext};
    pub use apc_sim::{SimDuration, SimTime};
    pub use apc_soc::cstate::{CoreCState, PackageCState};
    pub use apc_soc::topology::{SkxSoc, SocConfig};
    pub use apc_telemetry::timeseries::{TimeSeries, TimeSeriesSample};
    pub use apc_trace::{ProfileReport, Span, SpanKind, TraceConfig, TraceLog};
    pub use apc_workloads::chain::TierService;
    pub use apc_workloads::loadgen::LoadGenerator;
    pub use apc_workloads::spec::WorkloadSpec;
}
