//! OS idle governor: selects a core C-state when a core goes idle.
//!
//! Modelled on the behaviour of the Linux `menu`/`teo` governors running on
//! top of the `intel_idle` driver: pick the deepest *enabled* C-state whose
//! target residency does not exceed the predicted idle duration. The
//! prediction here is supplied by the caller (the full-system simulation
//! knows the time until the next scheduled arrival; real governors estimate
//! it from history — the paper's evaluation only depends on which state is
//! chosen, not on the estimator internals).

use apc_sim::SimDuration;
use apc_soc::cstate::CoreCState;

use crate::config::PlatformConfig;

/// The idle governor.
#[derive(Debug, Clone)]
pub struct IdleGovernor {
    enabled: Vec<CoreCState>,
}

impl IdleGovernor {
    /// Creates a governor allowed to use the platform configuration's
    /// enabled core C-states.
    #[must_use]
    pub fn new(config: &PlatformConfig) -> Self {
        let mut enabled = config.enabled_core_cstates.clone();
        enabled.sort();
        enabled.dedup();
        IdleGovernor { enabled }
    }

    /// The enabled core C-states, shallow to deep.
    #[must_use]
    pub fn enabled_states(&self) -> &[CoreCState] {
        &self.enabled
    }

    /// Selects the C-state for a core that just became idle, given the
    /// expected idle duration. Falls back to CC1 when nothing deeper
    /// qualifies (a halted core always at least clock-gates).
    #[must_use]
    pub fn select(&self, predicted_idle: SimDuration) -> CoreCState {
        let mut choice = CoreCState::CC1;
        for &state in &self.enabled {
            if state.is_idle() && state.target_residency() <= predicted_idle {
                choice = choice.max(state);
            }
        }
        choice
    }

    /// Selects the C-state when the idle duration is unknown (no pending
    /// timer): real governors use the deepest enabled state in that case,
    /// which is what makes `Cdeep` pay CC6 wakeups on unpredictable traffic.
    #[must_use]
    pub fn select_unbounded(&self) -> CoreCState {
        self.enabled
            .iter()
            .copied()
            .filter(|s| s.is_idle())
            .max()
            .unwrap_or(CoreCState::CC1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;

    #[test]
    fn cshallow_governor_only_uses_cc1() {
        let g = IdleGovernor::new(&PlatformConfig::c_shallow());
        assert_eq!(g.enabled_states(), &[CoreCState::CC1]);
        assert_eq!(g.select(SimDuration::from_micros(1)), CoreCState::CC1);
        assert_eq!(g.select(SimDuration::from_millis(100)), CoreCState::CC1);
        assert_eq!(g.select_unbounded(), CoreCState::CC1);
    }

    #[test]
    fn cdeep_governor_picks_by_target_residency() {
        let g = IdleGovernor::new(&PlatformConfig::c_deep());
        // Very short idle: CC1 only.
        assert_eq!(g.select(SimDuration::from_micros(3)), CoreCState::CC1);
        // Medium idle: CC1E qualifies, CC6 does not.
        assert_eq!(g.select(SimDuration::from_micros(100)), CoreCState::CC1E);
        // Long idle: CC6.
        assert_eq!(g.select(SimDuration::from_millis(2)), CoreCState::CC6);
        // Unknown idle duration: deepest enabled.
        assert_eq!(g.select_unbounded(), CoreCState::CC6);
    }

    #[test]
    fn sub_target_idle_still_returns_cc1() {
        let g = IdleGovernor::new(&PlatformConfig::c_deep());
        assert_eq!(g.select(SimDuration::ZERO), CoreCState::CC1);
    }

    #[test]
    fn duplicate_states_are_deduplicated() {
        let mut cfg = PlatformConfig::c_shallow();
        cfg.enabled_core_cstates = vec![CoreCState::CC1, CoreCState::CC1, CoreCState::CC6];
        let g = IdleGovernor::new(&cfg);
        assert_eq!(g.enabled_states(), &[CoreCState::CC1, CoreCState::CC6]);
    }
}
