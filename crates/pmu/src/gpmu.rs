//! The firmware-based Global Power Management Unit (GPMU) and the baseline
//! PC6 package C-state flow.
//!
//! The GPMU lives in the north cap and runs firmware; its package flows are
//! therefore *microsecond-scale*. The PC6 entry flow (paper Fig. 2) is:
//! once all cores are in CC6, pass through PC2, place IOs in L1 and DRAM in
//! self-refresh, clock-gate the uncore and turn off most PLLs, then drop the
//! CLM voltage to retention. Exit reverses the flow and additionally pays the
//! PLL re-lock time. The total entry+exit latency exceeds 50 µs (Table 1),
//! which is exactly why the state is unusable for latency-critical servers.

use std::fmt;

use apc_sim::{SimDuration, SimTime};
use apc_soc::cstate::PackageCState;
use apc_soc::topology::SkxSoc;

/// Phases of the firmware package C-state flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpmuPhase {
    /// Package active (PC0) or idling without any package action.
    Active,
    /// Entry flow in progress (PC2 transient and deeper steps).
    Entering,
    /// Resident in PC6.
    InPc6,
    /// Exit flow in progress.
    Exiting,
}

impl fmt::Display for GpmuPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GpmuPhase::Active => "active",
            GpmuPhase::Entering => "entering",
            GpmuPhase::InPc6 => "in-PC6",
            GpmuPhase::Exiting => "exiting",
        };
        f.write_str(s)
    }
}

/// Latency budget of the firmware PC6 flow, mirroring Fig. 2's steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pc6LatencyModel {
    /// Firmware decision + PC2 transit on entry.
    pub firmware_entry_overhead: SimDuration,
    /// Placing IOs in L1 and DRAM in self-refresh.
    pub io_dram_entry: SimDuration,
    /// Clock-gating the uncore, stopping PLLs and dropping CLM voltage.
    pub uncore_entry: SimDuration,
    /// Firmware decision + PC2 transit on exit.
    pub firmware_exit_overhead: SimDuration,
    /// PLL re-lock on exit.
    pub pll_relock: SimDuration,
    /// CLM voltage ramp + uncore clock ungate on exit.
    pub uncore_exit: SimDuration,
    /// IO L1 exit (link retraining) and DRAM self-refresh exit.
    pub io_dram_exit: SimDuration,
}

impl Pc6LatencyModel {
    /// The latency budget used by the reproduction. The split between steps
    /// follows the mechanism latencies discussed in Sec. 3.1 and 5.5; the
    /// total is calibrated so that entry + exit > 50 µs (Table 1).
    #[must_use]
    pub fn skx() -> Self {
        Pc6LatencyModel {
            firmware_entry_overhead: SimDuration::from_micros(10),
            io_dram_entry: SimDuration::from_micros(6),
            uncore_entry: SimDuration::from_micros(6),
            firmware_exit_overhead: SimDuration::from_micros(10),
            pll_relock: SimDuration::from_micros(3),
            uncore_exit: SimDuration::from_micros(5),
            io_dram_exit: SimDuration::from_micros(12),
        }
    }

    /// Total entry latency.
    #[must_use]
    pub fn entry(&self) -> SimDuration {
        self.firmware_entry_overhead + self.io_dram_entry + self.uncore_entry
    }

    /// Total exit latency.
    #[must_use]
    pub fn exit(&self) -> SimDuration {
        self.firmware_exit_overhead + self.pll_relock + self.uncore_exit + self.io_dram_exit
    }

    /// Total entry + exit latency (the Table 1 number).
    #[must_use]
    pub fn round_trip(&self) -> SimDuration {
        self.entry() + self.exit()
    }
}

impl Default for Pc6LatencyModel {
    fn default() -> Self {
        Pc6LatencyModel::skx()
    }
}

/// The firmware GPMU: drives the baseline PC6 flow and provides the wakeup
/// interface the APMU also hooks into.
#[derive(Debug, Clone)]
pub struct Gpmu {
    phase: GpmuPhase,
    latency: Pc6LatencyModel,
    /// Deepest package C-state the platform allows (PC0 disables the flow).
    package_limit: PackageCState,
    since: SimTime,
    pc6_entries: u64,
    pc6_residency: SimDuration,
}

impl Gpmu {
    /// Creates a GPMU with the given package C-state limit.
    #[must_use]
    pub fn new(package_limit: PackageCState) -> Self {
        Gpmu {
            phase: GpmuPhase::Active,
            latency: Pc6LatencyModel::skx(),
            package_limit,
            since: SimTime::ZERO,
            pc6_entries: 0,
            pc6_residency: SimDuration::ZERO,
        }
    }

    /// The current flow phase.
    #[must_use]
    pub fn phase(&self) -> GpmuPhase {
        self.phase
    }

    /// The latency model in use.
    #[must_use]
    pub fn latency_model(&self) -> &Pc6LatencyModel {
        &self.latency
    }

    /// Number of completed PC6 entries.
    #[must_use]
    pub fn pc6_entries(&self) -> u64 {
        self.pc6_entries
    }

    /// Total time spent resident in PC6.
    #[must_use]
    pub fn pc6_residency(&self) -> SimDuration {
        self.pc6_residency
    }

    /// Whether the GPMU would start a PC6 entry right now: the platform must
    /// allow PC6 and every core must be established in CC6.
    #[must_use]
    pub fn can_enter_pc6(&self, soc: &SkxSoc) -> bool {
        self.package_limit == PackageCState::PC6
            && self.phase == GpmuPhase::Active
            && soc.cores().all_at_least(apc_soc::cstate::CoreCState::CC6)
    }

    /// Begins the PC6 entry flow (Fig. 2), applying the component state
    /// changes to the socket, and returns the entry latency after which
    /// [`Gpmu::complete_entry`] must be called.
    ///
    /// # Panics
    ///
    /// Panics if the flow preconditions do not hold (call
    /// [`Gpmu::can_enter_pc6`] first).
    pub fn begin_entry(&mut self, soc: &mut SkxSoc, now: SimTime) -> SimDuration {
        assert!(self.can_enter_pc6(soc), "PC6 entry preconditions not met");
        self.phase = GpmuPhase::Entering;
        self.since = now;

        // IOs to L1, DRAM to self-refresh.
        for io in soc.ios_mut().iter_mut() {
            io.set_allow_l1(true);
            io.enter_l1(now);
        }
        for mc in soc.memory_mut().iter_mut() {
            mc.set_allow_self_refresh(true);
            mc.enter_self_refresh(now);
        }
        // Uncore: gate CLM clock, stop PLLs, drop CLM voltage to retention.
        soc.clm_mut().clock_gate(now);
        soc.plls_mut().power_off_uncore(now);
        let ramp = soc.clm_mut().assert_retention(now);
        let _ = ramp; // subsumed by the firmware latency budget below
        self.latency.entry()
    }

    /// Marks the PC6 entry flow complete.
    pub fn complete_entry(&mut self, soc: &mut SkxSoc, now: SimTime) {
        assert_eq!(self.phase, GpmuPhase::Entering, "no PC6 entry in flight");
        soc.clm_mut().complete_voltage_transition(now);
        self.phase = GpmuPhase::InPc6;
        self.since = now;
        self.pc6_entries += 1;
    }

    /// Begins the PC6 exit flow in response to a wakeup event and returns the
    /// exit latency after which [`Gpmu::complete_exit`] must be called.
    ///
    /// # Panics
    ///
    /// Panics if the package is not resident in PC6 (an exit during entry is
    /// modelled by the caller waiting for entry to complete first, which is
    /// what the firmware flow does).
    pub fn begin_exit(&mut self, soc: &mut SkxSoc, now: SimTime) -> SimDuration {
        assert_eq!(self.phase, GpmuPhase::InPc6, "not resident in PC6");
        self.pc6_residency += now - self.since;
        self.phase = GpmuPhase::Exiting;
        self.since = now;

        // Reverse order: ramp CLM voltage, re-lock PLLs, ungate, wake IOs/DRAM.
        soc.clm_mut().deassert_retention(now);
        soc.plls_mut().begin_relock_uncore(now);
        self.latency.exit()
    }

    /// Marks the PC6 exit flow complete; the package is active again.
    pub fn complete_exit(&mut self, soc: &mut SkxSoc, now: SimTime) {
        assert_eq!(self.phase, GpmuPhase::Exiting, "no PC6 exit in flight");
        soc.clm_mut().complete_voltage_transition(now);
        soc.clm_mut().clock_ungate(now);
        soc.plls_mut().complete_relock_uncore(now);
        for io in soc.ios_mut().iter_mut() {
            io.set_allow_l1(false);
            io.wake(now);
        }
        for mc in soc.memory_mut().iter_mut() {
            mc.set_allow_self_refresh(false);
            mc.wake(now);
        }
        self.phase = GpmuPhase::Active;
        self.since = now;
    }

    /// The package C-state corresponding to the current phase (used by the
    /// power model: entering/exiting phases are conservatively charged at the
    /// shallower state's power).
    #[must_use]
    pub fn package_state(&self, all_cores_idle: bool) -> PackageCState {
        match self.phase {
            GpmuPhase::InPc6 => PackageCState::PC6,
            GpmuPhase::Entering | GpmuPhase::Exiting => PackageCState::PC2,
            GpmuPhase::Active => {
                if all_cores_idle {
                    PackageCState::PC0Idle
                } else {
                    PackageCState::PC0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_soc::cstate::CoreCState;
    use apc_soc::io::LinkPowerState;
    use apc_soc::memory::DramPowerMode;
    use apc_soc::pll::PllState;

    #[test]
    fn pc6_round_trip_latency_exceeds_50us() {
        let m = Pc6LatencyModel::skx();
        assert!(m.round_trip() >= SimDuration::from_micros(50));
        assert!(m.entry() > SimDuration::from_micros(10));
        assert!(m.exit() > SimDuration::from_micros(20));
        assert_eq!(Pc6LatencyModel::default(), m);
    }

    #[test]
    fn gpmu_requires_all_cores_in_cc6() {
        let mut soc = SkxSoc::xeon_silver_4114();
        let gpmu = Gpmu::new(PackageCState::PC6);
        assert!(!gpmu.can_enter_pc6(&soc), "cores are active");
        soc.force_all_cores(SimTime::ZERO, CoreCState::CC1);
        assert!(!gpmu.can_enter_pc6(&soc), "CC1 is not deep enough for PC6");
        soc.force_all_cores(SimTime::ZERO, CoreCState::CC6);
        assert!(gpmu.can_enter_pc6(&soc));
    }

    #[test]
    fn gpmu_disabled_when_package_limit_is_pc0() {
        let mut soc = SkxSoc::xeon_silver_4114();
        soc.force_all_cores(SimTime::ZERO, CoreCState::CC6);
        let gpmu = Gpmu::new(PackageCState::PC0);
        assert!(!gpmu.can_enter_pc6(&soc));
    }

    #[test]
    fn full_pc6_entry_exit_cycle() {
        let mut soc = SkxSoc::xeon_silver_4114();
        soc.force_all_cores(SimTime::ZERO, CoreCState::CC6);
        let mut gpmu = Gpmu::new(PackageCState::PC6);

        let t0 = SimTime::from_micros(100);
        let entry = gpmu.begin_entry(&mut soc, t0);
        assert_eq!(gpmu.phase(), GpmuPhase::Entering);
        assert_eq!(gpmu.package_state(true), PackageCState::PC2);
        gpmu.complete_entry(&mut soc, t0 + entry);
        assert_eq!(gpmu.phase(), GpmuPhase::InPc6);
        assert_eq!(gpmu.package_state(true), PackageCState::PC6);
        assert_eq!(gpmu.pc6_entries(), 1);

        // Component states while resident in PC6.
        assert!(soc.ios().iter().all(|c| c.state() == LinkPowerState::L1));
        assert!(soc
            .memory()
            .iter()
            .all(|m| m.mode() == DramPowerMode::SelfRefresh));
        assert!(soc.plls().uncore_plls().all(|p| p.state() == PllState::Off));
        assert!(soc.clm().clock().is_gated());

        // Reside for 1 ms, then a wakeup arrives.
        let t1 = t0 + entry + SimDuration::from_millis(1);
        let exit = gpmu.begin_exit(&mut soc, t1);
        assert_eq!(gpmu.phase(), GpmuPhase::Exiting);
        gpmu.complete_exit(&mut soc, t1 + exit);
        assert_eq!(gpmu.phase(), GpmuPhase::Active);
        assert!(gpmu.pc6_residency() >= SimDuration::from_millis(1));

        // Everything operational again.
        assert!(soc.ios().iter().all(|c| c.state() == LinkPowerState::L0));
        assert!(soc
            .memory()
            .iter()
            .all(|m| m.mode() == DramPowerMode::Active));
        assert!(soc
            .plls()
            .uncore_plls()
            .all(|p| p.state() == PllState::Locked));
        assert!(!soc.clm().clock().is_gated());
        assert_eq!(gpmu.package_state(false), PackageCState::PC0);
        assert_eq!(gpmu.package_state(true), PackageCState::PC0Idle);
    }

    #[test]
    #[should_panic(expected = "preconditions not met")]
    fn entry_without_preconditions_panics() {
        let mut soc = SkxSoc::xeon_silver_4114();
        let mut gpmu = Gpmu::new(PackageCState::PC6);
        let _ = gpmu.begin_entry(&mut soc, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "not resident in PC6")]
    fn exit_without_entry_panics() {
        let mut soc = SkxSoc::xeon_silver_4114();
        let mut gpmu = Gpmu::new(PackageCState::PC6);
        let _ = gpmu.begin_exit(&mut soc, SimTime::ZERO);
    }

    #[test]
    fn phase_display() {
        assert_eq!(GpmuPhase::Active.to_string(), "active");
        assert_eq!(GpmuPhase::InPc6.to_string(), "in-PC6");
    }
}
