//! # `apc-pmu` — baseline power management
//!
//! The pre-APC power-management stack of the modelled server:
//!
//! * [`config`] — platform configurations (`Cshallow`, `Cdeep`, `CPC1A`)
//!   matching the paper's Sec. 6 baselines;
//! * [`governor`] — the OS idle governor selecting core C-states;
//! * [`gpmu`] — the firmware Global PMU with the microsecond-scale PC6
//!   entry/exit flow (paper Fig. 2).
//!
//! The APC additions (APMU, PC1A flow) live in `apc-core` and layer on top of
//! the GPMU via the wakeup/`InPC1A` interface described in the paper.
//!
//! # Example
//!
//! ```
//! use apc_pmu::config::PlatformConfig;
//! use apc_pmu::governor::IdleGovernor;
//! use apc_sim::SimDuration;
//! use apc_soc::cstate::CoreCState;
//!
//! // The datacenter baseline only ever uses CC1, no matter how long the
//! // predicted idle period is — this is what strands the package in PC0.
//! let governor = IdleGovernor::new(&PlatformConfig::c_shallow());
//! assert_eq!(governor.select(SimDuration::from_millis(10)), CoreCState::CC1);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod governor;
pub mod gpmu;

pub use config::{FrequencyGovernor, PackagePolicy, PlatformConfig};
pub use governor::IdleGovernor;
pub use gpmu::{Gpmu, GpmuPhase, Pc6LatencyModel};
