//! Platform power-management configuration (BIOS / OS level).
//!
//! The paper evaluates two baseline configurations (Sec. 6):
//!
//! * **`Cshallow`** — the realistic datacenter configuration: CC6 and CC1E
//!   disabled, all package C-states disabled, frequency governor set to
//!   `performance`. Cores only ever use CC1; the package never leaves PC0.
//! * **`Cdeep`** — all core and package C-states enabled, governor set to
//!   `powersave`, system tuned (powertop auto-tune) so PC6 is reachable.
//!
//! The reproduction adds **`CPc1a`** — `Cshallow` plus the APC hardware, so
//! the package can enter PC1A whenever all cores are in CC1.

use std::fmt;

use apc_soc::cstate::{CoreCState, PackageCState};

/// CPU frequency scaling governor (P-states are disabled in both of the
/// paper's configurations; the governor only selects the pinned operating
/// point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrequencyGovernor {
    /// Pin the nominal frequency (used by `Cshallow`).
    Performance,
    /// Prefer the minimum frequency when idle (used by `Cdeep`).
    Powersave,
}

impl fmt::Display for FrequencyGovernor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrequencyGovernor::Performance => f.write_str("performance"),
            FrequencyGovernor::Powersave => f.write_str("powersave"),
        }
    }
}

/// Which package-level power mechanism is available to the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackagePolicy {
    /// No package C-state is ever entered (package C-states disabled, the
    /// `Cshallow` behaviour).
    None,
    /// The firmware GPMU may enter PC6 when all cores reach CC6
    /// (the `Cdeep` behaviour).
    Pc6,
    /// The APC hardware may enter PC1A when all cores reach CC1
    /// (the `CPC1A` behaviour).
    Pc1a,
}

impl fmt::Display for PackagePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackagePolicy::None => f.write_str("no package C-states"),
            PackagePolicy::Pc6 => f.write_str("PC6"),
            PackagePolicy::Pc1a => f.write_str("PC1A"),
        }
    }
}

/// A named platform configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Short name used in reports (`Cshallow`, `Cdeep`, `CPC1A`).
    pub name: &'static str,
    /// Core C-states the OS idle governor may use, shallow to deep.
    pub enabled_core_cstates: Vec<CoreCState>,
    /// The package-level mechanism available.
    pub package_policy: PackagePolicy,
    /// Frequency governor.
    pub governor: FrequencyGovernor,
    /// Whether IO links may enter L0s/L0p while cores are active
    /// (always `false`: both the baseline BIOS guidance and APC keep shallow
    /// link states disabled during PC0; APC only enables them inside the
    /// PC1A flow).
    pub io_shallow_in_pc0: bool,
}

impl PlatformConfig {
    /// The realistic datacenter baseline (paper `Cshallow`).
    #[must_use]
    pub fn c_shallow() -> Self {
        PlatformConfig {
            name: "Cshallow",
            enabled_core_cstates: vec![CoreCState::CC1],
            package_policy: PackagePolicy::None,
            governor: FrequencyGovernor::Performance,
            io_shallow_in_pc0: false,
        }
    }

    /// The deep-idle baseline (paper `Cdeep`).
    #[must_use]
    pub fn c_deep() -> Self {
        PlatformConfig {
            name: "Cdeep",
            enabled_core_cstates: vec![CoreCState::CC1, CoreCState::CC1E, CoreCState::CC6],
            package_policy: PackagePolicy::Pc6,
            governor: FrequencyGovernor::Powersave,
            io_shallow_in_pc0: false,
        }
    }

    /// `Cshallow` enhanced with the APC architecture (paper `CPC1A`).
    #[must_use]
    pub fn c_pc1a() -> Self {
        PlatformConfig {
            name: "CPC1A",
            enabled_core_cstates: vec![CoreCState::CC1],
            package_policy: PackagePolicy::Pc1a,
            governor: FrequencyGovernor::Performance,
            io_shallow_in_pc0: false,
        }
    }

    /// The deepest core C-state the idle governor may select.
    #[must_use]
    pub fn deepest_core_cstate(&self) -> CoreCState {
        self.enabled_core_cstates
            .iter()
            .copied()
            .max()
            .unwrap_or(CoreCState::CC1)
    }

    /// `true` when the given core C-state is enabled.
    #[must_use]
    pub fn core_cstate_enabled(&self, state: CoreCState) -> bool {
        self.enabled_core_cstates.contains(&state)
    }

    /// The deepest package C-state reachable under this configuration.
    #[must_use]
    pub fn package_cstate_limit(&self) -> PackageCState {
        match self.package_policy {
            PackagePolicy::None => PackageCState::PC0,
            PackagePolicy::Pc6 => PackageCState::PC6,
            PackagePolicy::Pc1a => PackageCState::PC1A,
        }
    }
}

impl fmt::Display for PlatformConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: core C-states {:?}, package {}, governor {}",
            self.name,
            self.enabled_core_cstates
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            self.package_policy,
            self.governor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cshallow_matches_paper_description() {
        let c = PlatformConfig::c_shallow();
        assert_eq!(c.name, "Cshallow");
        assert!(c.core_cstate_enabled(CoreCState::CC1));
        assert!(!c.core_cstate_enabled(CoreCState::CC6));
        assert!(!c.core_cstate_enabled(CoreCState::CC1E));
        assert_eq!(c.package_policy, PackagePolicy::None);
        assert_eq!(c.governor, FrequencyGovernor::Performance);
        assert_eq!(c.deepest_core_cstate(), CoreCState::CC1);
        assert_eq!(c.package_cstate_limit(), PackageCState::PC0);
        assert!(!c.io_shallow_in_pc0);
    }

    #[test]
    fn cdeep_matches_paper_description() {
        let c = PlatformConfig::c_deep();
        assert!(c.core_cstate_enabled(CoreCState::CC6));
        assert_eq!(c.package_policy, PackagePolicy::Pc6);
        assert_eq!(c.governor, FrequencyGovernor::Powersave);
        assert_eq!(c.deepest_core_cstate(), CoreCState::CC6);
        assert_eq!(c.package_cstate_limit(), PackageCState::PC6);
    }

    #[test]
    fn cpc1a_is_cshallow_plus_apc() {
        let apc = PlatformConfig::c_pc1a();
        let shallow = PlatformConfig::c_shallow();
        assert_eq!(apc.enabled_core_cstates, shallow.enabled_core_cstates);
        assert_eq!(apc.governor, shallow.governor);
        assert_eq!(apc.package_policy, PackagePolicy::Pc1a);
        assert_eq!(apc.package_cstate_limit(), PackageCState::PC1A);
    }

    #[test]
    fn display_is_informative() {
        let s = PlatformConfig::c_deep().to_string();
        assert!(s.contains("Cdeep"));
        assert!(s.contains("powersave"));
        assert_eq!(PackagePolicy::Pc1a.to_string(), "PC1A");
        assert_eq!(FrequencyGovernor::Performance.to_string(), "performance");
    }
}
