//! The sketch accuracy contract, enforced on adversarial distributions.
//!
//! [`QuantileSketch`] promises: for every queried quantile, the estimate is
//! within `alpha` relative error of the **lower nearest-rank** exact value
//! `sorted[floor(q * (n - 1))]` of the recorded multiset (clamped to the
//! observed `[min, max]`), and `count`/`sum`/`min`/`max` are exact. This
//! suite drives the latency-default sketch (`alpha = 1 %`) with fixed-seed
//! streams chosen to stress different failure modes — flat mass (uniform),
//! heavy tail (lognormal), a sparse far mode that midpoint interpolation
//! would misplace (bimodal spike), and the degenerate constant and
//! single-sample streams where the contract sharpens to exactness — and
//! checks every promise against a sorted copy of the stream.
//!
//! Merge gets the same treatment: associativity and commutativity must hold
//! *exactly* (identical [`QuantileSketch::parts`]), and resharding a stream
//! `k` ways then merging must be indistinguishable from never sharding —
//! the property the sweep-shard checkpoint path rests on.

use apc_sim::SimRng;
use apc_telemetry::sketch::QuantileSketch;

const QUANTILES: [f64; 4] = [0.5, 0.95, 0.99, 0.999];

/// Lower nearest-rank quantile: `sorted[floor(q * (n - 1))]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    sorted[(q * (sorted.len() - 1) as f64).floor() as usize]
}

/// Records `values` into a fresh latency-default sketch.
fn sketch_of(values: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::latency_default();
    for &v in values {
        s.record(v);
    }
    s
}

/// Asserts the full accuracy contract of `sketch` against its stream.
fn assert_contract(name: &str, values: &[u64]) {
    let sketch = sketch_of(values);
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    assert_eq!(sketch.count(), values.len() as u64, "{name}: count");
    assert_eq!(
        sketch.sum(),
        values.iter().map(|&v| u128::from(v)).sum::<u128>(),
        "{name}: sum"
    );
    assert_eq!(sketch.min(), sorted.first().copied(), "{name}: min");
    assert_eq!(sketch.max(), sorted.last().copied(), "{name}: max");
    let alpha = sketch.relative_error();
    for q in QUANTILES {
        let exact = exact_quantile(&sorted, q);
        let est = sketch.quantile(q).expect("non-empty sketch");
        let delta = est.abs_diff(exact) as f64;
        // `+ 1.0` absorbs the rounding of the bucket midpoint to u64.
        assert!(
            delta <= alpha * exact as f64 + 1.0,
            "{name}: q={q} exact={exact} est={est} (delta {delta})"
        );
    }
}

fn uniform_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::from_seed(seed);
    (0..n)
        .map(|_| rng.uniform_range(1_000.0, 1_000_000.0) as u64)
        .collect()
}

fn lognormal_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::from_seed(seed);
    (0..n)
        .map(|_| {
            let ln = rng.standard_normal() * 1.5 + (100_000.0f64).ln();
            (ln.exp() as u64).max(1)
        })
        .collect()
}

/// 99 % of mass near 10 us, 1 % near 5 ms: a sparse far mode whose gap a
/// midpoint-interpolating estimator would bridge with impossible values.
fn bimodal_spike_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::from_seed(seed);
    (0..n)
        .map(|_| {
            if rng.chance(0.01) {
                5_000_000 + rng.next_u64() % 50_000
            } else {
                10_000 + rng.next_u64() % 500
            }
        })
        .collect()
}

#[test]
fn uniform_meets_the_contract() {
    assert_contract("uniform", &uniform_stream(100_000, 11));
}

#[test]
fn lognormal_meets_the_contract() {
    assert_contract("lognormal", &lognormal_stream(100_000, 12));
}

#[test]
fn bimodal_spike_meets_the_contract() {
    assert_contract("bimodal", &bimodal_spike_stream(100_000, 13));
}

#[test]
fn constant_stream_is_exact() {
    let values = vec![42_000u64; 10_000];
    assert_contract("constant", &values);
    let sketch = sketch_of(&values);
    for q in QUANTILES {
        assert_eq!(sketch.quantile(q), Some(42_000), "q={q}");
    }
}

#[test]
fn single_sample_is_exact() {
    let values = [123_456u64];
    assert_contract("single", &values);
    let sketch = sketch_of(&values);
    for q in QUANTILES {
        assert_eq!(sketch.quantile(q), Some(123_456), "q={q}");
    }
}

#[test]
fn zero_values_are_representable_and_exact_at_the_bottom() {
    let mut values = vec![0u64; 500];
    values.extend(uniform_stream(1_500, 14));
    assert_contract("zero-mixed", &values);
    let sketch = sketch_of(&values);
    // A quarter of the mass is zero, so the low quantiles are exactly zero.
    assert_eq!(sketch.quantile(0.1), Some(0));
}

#[test]
fn merge_is_exactly_associative_and_commutative() {
    let stream = lognormal_stream(30_000, 15);
    let (a, rest) = stream.split_at(7_000);
    let (b, c) = rest.split_at(11_000);
    let (sa, sb, sc) = (sketch_of(a), sketch_of(b), sketch_of(c));

    // (a ∪ b) ∪ c == a ∪ (b ∪ c), exactly.
    let mut left = sa.clone();
    left.merge(&sb);
    left.merge(&sc);
    let mut bc = sb.clone();
    bc.merge(&sc);
    let mut right = sa.clone();
    right.merge(&bc);
    assert_eq!(left.parts(), right.parts());

    // a ∪ b == b ∪ a, exactly.
    let mut ab = sa.clone();
    ab.merge(&sb);
    let mut ba = sb.clone();
    ba.merge(&sa);
    assert_eq!(ab.parts(), ba.parts());

    // And the merged sketch is the whole stream's sketch, exactly.
    assert_eq!(left.parts(), sketch_of(&stream).parts());
}

#[test]
fn shard_split_merge_equals_unsharded_exactly() {
    let stream = bimodal_spike_stream(50_000, 16);
    let whole = sketch_of(&stream);
    for shards in [2usize, 3, 7] {
        let mut parts: Vec<QuantileSketch> = (0..shards)
            .map(|s| {
                sketch_of(
                    &stream
                        .iter()
                        .copied()
                        .enumerate()
                        .filter(|(i, _)| i % shards == s)
                        .map(|(_, v)| v)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.parts(), whole.parts(), "{shards} shards");
    }
}
