//! # `apc-telemetry` — residency, idle-period and latency telemetry
//!
//! The measurement layer of the reproduction: the counters and traces from
//! which every figure of the paper's evaluation is computed.
//!
//! * [`residency`] — per-core and package C-state residency counters
//!   (Fig. 6(a)/(b), 8(a), 9(a));
//! * [`idle`] — fully-idle period tracking with the SoCWatch 10 µs floor
//!   (Fig. 6(b)/(c));
//! * [`latency`] — end-to-end latency recording (Fig. 5, 7(c));
//! * [`sketch`] — the bounded-memory relative-error quantile sketch behind
//!   the latency recorder (1 % error contract, exact merge);
//! * [`tracer`] — a bounded power-event trace for flow inspection;
//! * [`timeseries`] — periodic samples of power, residency deltas and queue
//!   depth over simulated time (the time-domain figures).

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod idle;
pub mod latency;
pub mod residency;
pub mod sketch;
pub mod timeseries;
pub mod tracer;

pub use idle::IdlePeriodTracker;
pub use latency::{LatencyRecorder, LatencySummary};
pub use residency::{CoreResidencySet, PackageResidency, StateResidency};
pub use sketch::{QuantileSketch, SketchParts};
pub use timeseries::{TimeSeries, TimeSeriesSample};
pub use tracer::{PowerTracer, TraceEvent};
