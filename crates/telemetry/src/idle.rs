//! Full-system idle-period tracking (the SoCWatch substitute).
//!
//! The paper estimates the PC1A opportunity by processing a SoCWatch trace of
//! core C-state transition events into periods during which *all* cores are
//! simultaneously idle (Sec. 6). SoCWatch cannot observe idle periods shorter
//! than 10 µs, so the paper's opportunity numbers are an under-estimate; the
//! tracker reproduces that floor as an option so experiments can report both
//! the raw and the SoCWatch-equivalent views.

use apc_sim::stats::DurationHistogram;
use apc_sim::{SimDuration, SimTime};

/// Tracks periods during which every core of the socket is idle.
#[derive(Debug, Clone)]
pub struct IdlePeriodTracker {
    /// Number of cores currently active (busy or transitioning to busy).
    active_cores: usize,
    total_cores: usize,
    /// Start of the current fully-idle period, if one is open.
    idle_since: Option<SimTime>,
    /// Minimum period length recorded (the SoCWatch sampling floor).
    min_period: SimDuration,
    histogram: DurationHistogram,
    total_idle: SimDuration,
    periods: u64,
    /// Periods discarded because they were shorter than the floor.
    below_floor: u64,
    window_start: SimTime,
    window_end: SimTime,
}

impl IdlePeriodTracker {
    /// The SoCWatch sampling floor from the paper (10 µs).
    pub const SOCWATCH_FLOOR: SimDuration = SimDuration::from_micros(10);

    /// Creates a tracker for `total_cores` cores, all initially active, with
    /// no minimum-period floor.
    #[must_use]
    pub fn new(total_cores: usize, start: SimTime) -> Self {
        IdlePeriodTracker {
            active_cores: total_cores,
            total_cores,
            idle_since: None,
            min_period: SimDuration::ZERO,
            histogram: DurationHistogram::idle_period_default(),
            total_idle: SimDuration::ZERO,
            periods: 0,
            below_floor: 0,
            window_start: start,
            window_end: start,
        }
    }

    /// Creates a tracker that, like SoCWatch, ignores idle periods shorter
    /// than 10 µs.
    #[must_use]
    pub fn with_socwatch_floor(total_cores: usize, start: SimTime) -> Self {
        let mut t = IdlePeriodTracker::new(total_cores, start);
        t.min_period = Self::SOCWATCH_FLOOR;
        t
    }

    /// Number of cores currently counted as active.
    #[must_use]
    pub fn active_cores(&self) -> usize {
        self.active_cores
    }

    /// `true` while a fully-idle period is open.
    #[must_use]
    pub fn all_idle(&self) -> bool {
        self.idle_since.is_some()
    }

    /// Notification that a core became idle at `now`.
    ///
    /// # Panics
    ///
    /// Panics if more cores go idle than exist.
    pub fn core_idle(&mut self, now: SimTime) {
        assert!(self.active_cores > 0, "more idle notifications than cores");
        self.active_cores -= 1;
        if self.active_cores == 0 {
            self.idle_since = Some(now);
        }
        self.window_end = self.window_end.max(now);
    }

    /// Notification that a core became active at `now`.
    ///
    /// # Panics
    ///
    /// Panics if more cores become active than exist.
    pub fn core_active(&mut self, now: SimTime) {
        assert!(
            self.active_cores < self.total_cores,
            "more active notifications than cores"
        );
        if let Some(start) = self.idle_since.take() {
            self.close_period(start, now);
        }
        self.active_cores += 1;
        self.window_end = self.window_end.max(now);
    }

    /// Closes the observation window at `now` (ends any open idle period).
    pub fn finish(&mut self, now: SimTime) {
        if let Some(start) = self.idle_since.take() {
            self.close_period(start, now);
            // Leave the system "idle" logically, but the period accounting is
            // closed: reopen so repeated finish calls don't double count.
            self.idle_since = Some(now);
        }
        self.window_end = self.window_end.max(now);
    }

    fn close_period(&mut self, start: SimTime, end: SimTime) {
        let len = end.saturating_since(start);
        if len < self.min_period {
            self.below_floor += 1;
            return;
        }
        self.histogram.record(len);
        self.total_idle += len;
        self.periods += 1;
    }

    /// Number of completed fully-idle periods (at or above the floor).
    #[must_use]
    pub fn period_count(&self) -> u64 {
        self.periods
    }

    /// Number of periods discarded by the floor.
    #[must_use]
    pub fn below_floor_count(&self) -> u64 {
        self.below_floor
    }

    /// Total fully-idle time (at or above the floor).
    #[must_use]
    pub fn total_idle(&self) -> SimDuration {
        self.total_idle
    }

    /// Fully-idle time as a fraction of the observation window — the paper's
    /// "PC1A residency opportunity" metric (Fig. 6(b)).
    #[must_use]
    pub fn idle_fraction(&self) -> f64 {
        let window = self.window_end.saturating_since(self.window_start);
        if window.is_zero() {
            return 0.0;
        }
        self.total_idle.as_nanos() as f64 / window.as_nanos() as f64
    }

    /// The idle-period length histogram (Fig. 6(c)).
    #[must_use]
    pub fn histogram(&self) -> &DurationHistogram {
        &self.histogram
    }

    /// Fraction of fully-idle periods whose length falls in `[lo, hi]`
    /// (Fig. 6(c)'s "60 % of idle periods are between 20 µs and 200 µs").
    #[must_use]
    pub fn fraction_between(&self, lo: SimDuration, hi: SimDuration) -> f64 {
        self.histogram.fraction_between(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_a_simple_idle_period() {
        let mut t = IdlePeriodTracker::new(2, SimTime::ZERO);
        assert!(!t.all_idle());
        t.core_idle(SimTime::from_micros(10));
        assert!(!t.all_idle(), "one core still active");
        t.core_idle(SimTime::from_micros(20));
        assert!(t.all_idle());
        t.core_active(SimTime::from_micros(120));
        assert!(!t.all_idle());
        t.finish(SimTime::from_micros(200));
        assert_eq!(t.period_count(), 1);
        assert_eq!(t.total_idle(), SimDuration::from_micros(100));
        assert!((t.idle_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(t.active_cores(), 1);
    }

    #[test]
    fn socwatch_floor_discards_short_periods() {
        let mut t = IdlePeriodTracker::with_socwatch_floor(1, SimTime::ZERO);
        // 5 µs idle period: below the 10 µs floor.
        t.core_idle(SimTime::from_micros(100));
        t.core_active(SimTime::from_micros(105));
        // 50 µs idle period: counted.
        t.core_idle(SimTime::from_micros(200));
        t.core_active(SimTime::from_micros(250));
        t.finish(SimTime::from_micros(300));
        assert_eq!(t.period_count(), 1);
        assert_eq!(t.below_floor_count(), 1);
        assert_eq!(t.total_idle(), SimDuration::from_micros(50));
    }

    #[test]
    fn histogram_fraction_between_matches_recorded_periods() {
        let mut t = IdlePeriodTracker::new(1, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        // Three periods of 50 µs (in range) and one of 500 µs (out of range).
        for len_us in [50u64, 50, 50, 500] {
            t.core_idle(now);
            now += SimDuration::from_micros(len_us);
            t.core_active(now);
            now += SimDuration::from_micros(10);
        }
        t.finish(now);
        let frac = t.fraction_between(SimDuration::from_micros(20), SimDuration::from_micros(200));
        assert!((frac - 0.75).abs() < 1e-9, "fraction {frac}");
        assert_eq!(t.histogram().count(), 4);
    }

    #[test]
    fn finish_with_open_period_counts_it_once() {
        let mut t = IdlePeriodTracker::new(1, SimTime::ZERO);
        t.core_idle(SimTime::ZERO);
        t.finish(SimTime::from_millis(1));
        assert_eq!(t.period_count(), 1);
        assert_eq!(t.total_idle(), SimDuration::from_millis(1));
        // A second finish at the same instant adds nothing.
        t.finish(SimTime::from_millis(1));
        assert_eq!(t.total_idle(), SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "more idle notifications than cores")]
    fn too_many_idle_notifications_panic() {
        let mut t = IdlePeriodTracker::new(1, SimTime::ZERO);
        t.core_idle(SimTime::ZERO);
        t.core_idle(SimTime::from_micros(1));
    }
}
