//! Power event tracer (the SoCWatch-equivalent event log).
//!
//! Records a bounded timeline of power-management events so that experiments
//! (and the `pc1a_flow_trace` example) can inspect *why* the package entered
//! or left a state, mirroring the event traces the paper collects with
//! SoCWatch for its opportunity analysis.

use std::fmt;

use apc_sim::SimTime;
use apc_soc::core::CoreId;
use apc_soc::cstate::{CoreCState, PackageCState};

/// A power-management event on the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A core changed C-state.
    CoreCState {
        /// Which core.
        core: CoreId,
        /// The state it entered.
        state: CoreCState,
    },
    /// The package changed C-state.
    PackageCState {
        /// The state the package entered.
        state: PackageCState,
    },
    /// A request arrived at the NIC.
    RequestArrival,
    /// A request completed service.
    RequestCompletion,
    /// A PC1A entry was aborted by a racing wakeup.
    Pc1aEntryAborted,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::CoreCState { core, state } => write!(f, "{core} -> {state}"),
            TraceEvent::PackageCState { state } => write!(f, "package -> {state}"),
            TraceEvent::RequestArrival => f.write_str("request arrival"),
            TraceEvent::RequestCompletion => f.write_str("request completion"),
            TraceEvent::Pc1aEntryAborted => f.write_str("PC1A entry aborted"),
        }
    }
}

/// A bounded in-memory event trace.
///
/// The trace keeps the first `capacity` events and counts (but does not
/// store) the rest, so long experiment runs cannot exhaust memory while short
/// flow traces remain fully inspectable.
#[derive(Debug, Clone)]
pub struct PowerTracer {
    events: Vec<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl PowerTracer {
    /// Creates a tracer retaining up to `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PowerTracer {
            events: Vec::new(),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Creates a disabled tracer (zero overhead for large sweeps).
    #[must_use]
    pub fn disabled() -> Self {
        let mut t = PowerTracer::new(0);
        t.enabled = false;
        t
    }

    /// Whether the tracer stores events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push((at, event));
        } else {
            self.dropped += 1;
        }
    }

    /// The retained events in arrival order.
    #[must_use]
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Number of events that did not fit in the buffer.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count of retained events matching a predicate.
    pub fn count_matching<F: Fn(&TraceEvent) -> bool>(&self, pred: F) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }
}

impl fmt::Display for PowerTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, e) in &self.events {
            writeln!(f, "[{t}] {e}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "... {} further events not retained", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_formats_events() {
        let mut t = PowerTracer::new(16);
        t.record(
            SimTime::from_micros(1),
            TraceEvent::CoreCState {
                core: CoreId(2),
                state: CoreCState::CC1,
            },
        );
        t.record(
            SimTime::from_micros(2),
            TraceEvent::PackageCState {
                state: PackageCState::PC1A,
            },
        );
        assert_eq!(t.events().len(), 2);
        let s = t.to_string();
        assert!(s.contains("core2 -> CC1"));
        assert!(s.contains("package -> PC1A"));
        assert_eq!(
            t.count_matching(|e| matches!(e, TraceEvent::PackageCState { .. })),
            1
        );
    }

    #[test]
    fn capacity_is_bounded() {
        let mut t = PowerTracer::new(2);
        for i in 0..5 {
            t.record(SimTime::from_nanos(i), TraceEvent::RequestArrival);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.to_string().contains("3 further events"));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = PowerTracer::disabled();
        assert!(!t.is_enabled());
        t.record(SimTime::ZERO, TraceEvent::RequestArrival);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
