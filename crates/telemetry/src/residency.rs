//! C-state residency accounting.
//!
//! Reproduces what the paper obtains from the hardware residency-reporting
//! counters (Sec. 6): the fraction of time each core spends in each core
//! C-state and the fraction of time the package spends in each package
//! C-state. Figures 6(a), 6(b), 8(a) and 9(a) are direct reductions of these
//! counters.

use std::collections::BTreeMap;

use apc_sim::{SimDuration, SimTime};
use apc_soc::core::CoreId;
use apc_soc::cstate::{CoreCState, PackageCState};

/// Tracks time spent per state for one state machine (a core or the package).
#[derive(Debug, Clone)]
pub struct StateResidency<S: Ord + Copy> {
    current: S,
    since: SimTime,
    accumulated: BTreeMap<S, SimDuration>,
    transitions: u64,
}

impl<S: Ord + Copy> StateResidency<S> {
    /// Creates a tracker starting in `initial` at time `start`.
    #[must_use]
    pub fn new(initial: S, start: SimTime) -> Self {
        StateResidency {
            current: initial,
            since: start,
            accumulated: BTreeMap::new(),
            transitions: 0,
        }
    }

    /// The current state.
    #[must_use]
    pub fn current(&self) -> S {
        self.current
    }

    /// Number of state transitions recorded.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Records a transition to `next` at time `now`. Transitions to the same
    /// state are ignored (no counter bump).
    pub fn transition(&mut self, now: SimTime, next: S) {
        if next == self.current {
            return;
        }
        let dwell = now.saturating_since(self.since);
        *self
            .accumulated
            .entry(self.current)
            .or_insert(SimDuration::ZERO) += dwell;
        self.current = next;
        self.since = now;
        self.transitions += 1;
    }

    /// Closes the accounting window at `now` without changing state (call at
    /// the end of a run before reading residencies).
    pub fn finish(&mut self, now: SimTime) {
        let dwell = now.saturating_since(self.since);
        *self
            .accumulated
            .entry(self.current)
            .or_insert(SimDuration::ZERO) += dwell;
        self.since = now;
    }

    /// Total time attributed to `state`.
    #[must_use]
    pub fn time_in(&self, state: S) -> SimDuration {
        self.accumulated
            .get(&state)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total time attributed to `state` *as of* `now`, including the still
    /// open dwell in the current state. Unlike [`StateResidency::finish`]
    /// this is a pure read: mid-run samplers use it to take residency
    /// snapshots without perturbing the accounting.
    #[must_use]
    pub fn time_in_at(&self, state: S, now: SimTime) -> SimDuration {
        let mut t = self.time_in(state);
        if state == self.current {
            t += now.saturating_since(self.since);
        }
        t
    }

    /// Total accounted time across all states.
    #[must_use]
    pub fn total(&self) -> SimDuration {
        self.accumulated.values().copied().sum()
    }

    /// Fraction of accounted time spent in `state` (0 when nothing has been
    /// accounted yet).
    #[must_use]
    pub fn fraction_in(&self, state: S) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.time_in(state).as_nanos() as f64 / total as f64
    }
}

/// Per-core core-C-state residency for a whole socket.
#[derive(Debug, Clone)]
pub struct CoreResidencySet {
    cores: Vec<StateResidency<CoreCState>>,
}

impl CoreResidencySet {
    /// Creates trackers for `n` cores, all starting in CC0.
    #[must_use]
    pub fn new(n: usize, start: SimTime) -> Self {
        CoreResidencySet {
            cores: (0..n)
                .map(|_| StateResidency::new(CoreCState::CC0, start))
                .collect(),
        }
    }

    /// Number of cores tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// `true` when no cores are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Records a core's transition.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn transition(&mut self, core: CoreId, now: SimTime, next: CoreCState) {
        self.cores[core.0].transition(now, next);
    }

    /// Closes all windows at `now`.
    pub fn finish(&mut self, now: SimTime) {
        for c in &mut self.cores {
            c.finish(now);
        }
    }

    /// Residency tracker of one core.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    #[must_use]
    pub fn core(&self, core: CoreId) -> &StateResidency<CoreCState> {
        &self.cores[core.0]
    }

    /// The average (across cores) fraction of time spent in `state`
    /// — what Fig. 6(a) plots.
    #[must_use]
    pub fn average_fraction_in(&self, state: CoreCState) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores.iter().map(|c| c.fraction_in(state)).sum::<f64>() / self.cores.len() as f64
    }

    /// Total number of core C-state transitions across the socket.
    #[must_use]
    pub fn total_transitions(&self) -> u64 {
        self.cores.iter().map(StateResidency::transitions).sum()
    }
}

/// Package C-state residency (Fig. 6(b)'s PC1A residency is
/// `fraction_in(PackageCState::PC1A)` under the `CPC1A` configuration, or the
/// fraction of time all cores are simultaneously idle under the baselines).
pub type PackageResidency = StateResidency<PackageCState>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tracker_accumulates_dwell_times() {
        let mut r = StateResidency::new(CoreCState::CC0, SimTime::ZERO);
        r.transition(SimTime::from_micros(10), CoreCState::CC1);
        r.transition(SimTime::from_micros(30), CoreCState::CC0);
        r.finish(SimTime::from_micros(40));
        assert_eq!(r.time_in(CoreCState::CC0), SimDuration::from_micros(20));
        assert_eq!(r.time_in(CoreCState::CC1), SimDuration::from_micros(20));
        assert_eq!(r.total(), SimDuration::from_micros(40));
        assert!((r.fraction_in(CoreCState::CC1) - 0.5).abs() < 1e-12);
        assert_eq!(r.transitions(), 2);
        assert_eq!(r.current(), CoreCState::CC0);
    }

    #[test]
    fn time_in_at_includes_the_open_dwell() {
        let mut r = StateResidency::new(CoreCState::CC0, SimTime::ZERO);
        r.transition(SimTime::from_micros(10), CoreCState::CC1);
        // 10 us closed in CC0; CC1 open since t = 10 us.
        let now = SimTime::from_micros(25);
        assert_eq!(
            r.time_in_at(CoreCState::CC0, now),
            SimDuration::from_micros(10)
        );
        assert_eq!(
            r.time_in_at(CoreCState::CC1, now),
            SimDuration::from_micros(15)
        );
        // The read is pure: closed accounting unchanged.
        assert_eq!(r.time_in(CoreCState::CC1), SimDuration::ZERO);
    }

    #[test]
    fn same_state_transitions_are_ignored() {
        let mut r = StateResidency::new(CoreCState::CC1, SimTime::ZERO);
        r.transition(SimTime::from_micros(5), CoreCState::CC1);
        assert_eq!(r.transitions(), 0);
        assert_eq!(r.fraction_in(CoreCState::CC1), 0.0, "nothing accounted yet");
    }

    #[test]
    fn core_set_average_fraction() {
        let mut set = CoreResidencySet::new(2, SimTime::ZERO);
        // Core 0 idles the whole window; core 1 stays active.
        set.transition(CoreId(0), SimTime::ZERO, CoreCState::CC1);
        set.finish(SimTime::from_millis(1));
        assert!((set.average_fraction_in(CoreCState::CC1) - 0.5).abs() < 1e-9);
        assert!((set.average_fraction_in(CoreCState::CC0) - 0.5).abs() < 1e-9);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_transitions(), 1);
        assert!(set.core(CoreId(0)).fraction_in(CoreCState::CC1) > 0.99);
    }

    #[test]
    fn package_residency_tracks_pc1a() {
        let mut p = PackageResidency::new(PackageCState::PC0, SimTime::ZERO);
        p.transition(SimTime::from_micros(100), PackageCState::PC0Idle);
        p.transition(SimTime::from_micros(110), PackageCState::PC1A);
        p.transition(SimTime::from_micros(210), PackageCState::PC0);
        p.finish(SimTime::from_micros(400));
        assert_eq!(
            p.time_in(PackageCState::PC1A),
            SimDuration::from_micros(100)
        );
        assert!((p.fraction_in(PackageCState::PC1A) - 0.25).abs() < 1e-9);
    }
}
