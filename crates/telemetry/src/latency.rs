//! End-to-end request latency telemetry.
//!
//! The paper reports average and tail (99th percentile) end-to-end latency,
//! where end-to-end = client-observed latency = network round trip (≈ 117 µs
//! for their testbed) + server-side queueing + service + any C-state wakeup
//! penalties. This module accumulates those samples and produces the summary
//! statistics the figures plot.

use apc_sim::stats::PercentileRecorder;
use apc_sim::SimDuration;

/// Summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of requests.
    pub count: usize,
    /// Mean latency.
    pub mean: SimDuration,
    /// Median latency.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile (the paper's tail metric).
    pub p99: SimDuration,
    /// 99.9th percentile (the paper's tail-latency SLO metric).
    pub p999: SimDuration,
    /// Maximum observed latency.
    pub max: SimDuration,
}

impl LatencySummary {
    /// An all-zero summary (no samples).
    #[must_use]
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean: SimDuration::ZERO,
            p50: SimDuration::ZERO,
            p95: SimDuration::ZERO,
            p99: SimDuration::ZERO,
            p999: SimDuration::ZERO,
            max: SimDuration::ZERO,
        }
    }
}

/// Records per-request latencies.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: PercentileRecorder,
    max: SimDuration,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one request's end-to-end latency.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples.record(latency.as_nanos() as f64);
        self.max = self.max.max(latency);
    }

    /// Number of recorded requests.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.count()
    }

    /// Produces the summary statistics.
    pub fn summary(&mut self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::empty();
        }
        let q = |r: &mut PercentileRecorder, q: f64| {
            SimDuration::from_nanos(r.quantile(q).unwrap_or(0.0).round() as u64)
        };
        LatencySummary {
            count: self.samples.count(),
            mean: SimDuration::from_nanos(self.samples.mean().round() as u64),
            p50: q(&mut self.samples, 0.50),
            p95: q(&mut self.samples, 0.95),
            p99: q(&mut self.samples, 0.99),
            p999: q(&mut self.samples, 0.999),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_uniform_latencies() {
        let mut r = LatencyRecorder::new();
        for us in 1..=100u64 {
            r.record(SimDuration::from_micros(us));
        }
        assert_eq!(r.count(), 100);
        let s = r.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, SimDuration::from_nanos(50_500));
        assert_eq!(s.max, SimDuration::from_micros(100));
        assert!(s.p99 >= SimDuration::from_micros(98));
        assert!(s.p50 >= SimDuration::from_micros(50));
        assert!(s.p95 >= SimDuration::from_micros(95));
        assert!(s.p999 >= s.p99 && s.p999 <= s.max);
    }

    #[test]
    fn empty_recorder_yields_empty_summary() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.summary(), LatencySummary::empty());
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn tail_reflects_outliers() {
        let mut r = LatencyRecorder::new();
        for _ in 0..990 {
            r.record(SimDuration::from_micros(100));
        }
        for _ in 0..10 {
            r.record(SimDuration::from_micros(1_000));
        }
        let s = r.summary();
        assert!(s.p99 >= SimDuration::from_micros(100));
        // The 1 % outliers dominate the 99.9th percentile.
        assert_eq!(s.p999, SimDuration::from_millis(1));
        assert_eq!(s.max, SimDuration::from_millis(1));
        assert!(s.mean > SimDuration::from_micros(100));
        assert!(s.mean < SimDuration::from_micros(120));
    }
}
