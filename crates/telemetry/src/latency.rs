//! End-to-end request latency telemetry.
//!
//! The paper reports average and tail (99th percentile) end-to-end latency,
//! where end-to-end = client-observed latency = network round trip (≈ 117 µs
//! for their testbed) + server-side queueing + service + any C-state wakeup
//! penalties. This module accumulates those samples and produces the summary
//! statistics the figures plot.
//!
//! Samples are *not* retained: the recorder feeds a bounded-memory
//! [`QuantileSketch`] (see [`crate::sketch`] for the 1 % relative-error
//! contract), so a recorder costs O(buckets) regardless of run length.
//! `count`, `mean` and `max` stay exact; the reported percentiles are sketch
//! estimates within the contract of the lower nearest-rank exact quantile.

use apc_sim::SimDuration;

use crate::sketch::QuantileSketch;

/// Summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of requests.
    pub count: usize,
    /// Mean latency (exact).
    pub mean: SimDuration,
    /// Median latency.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile (the paper's tail metric).
    pub p99: SimDuration,
    /// 99.9th percentile (the paper's tail-latency SLO metric).
    pub p999: SimDuration,
    /// Maximum observed latency (exact).
    pub max: SimDuration,
}

impl LatencySummary {
    /// An all-zero summary (no samples).
    #[must_use]
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean: SimDuration::ZERO,
            p50: SimDuration::ZERO,
            p95: SimDuration::ZERO,
            p99: SimDuration::ZERO,
            p999: SimDuration::ZERO,
            max: SimDuration::ZERO,
        }
    }
}

/// Records per-request latencies into a bounded-memory sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRecorder {
    sketch: QuantileSketch,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder::new()
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder (1 % relative-error latency sketch).
    #[must_use]
    pub fn new() -> Self {
        LatencyRecorder {
            sketch: QuantileSketch::latency_default(),
        }
    }

    /// A recorder wrapping an existing sketch (e.g. one deserialized from a
    /// sweep-shard checkpoint), so its summary can be re-derived.
    #[must_use]
    pub fn from_sketch(sketch: QuantileSketch) -> Self {
        LatencyRecorder { sketch }
    }

    /// Records one request's end-to-end latency.
    pub fn record(&mut self, latency: SimDuration) {
        self.sketch.record(latency.as_nanos());
    }

    /// Number of recorded requests.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn count(&self) -> usize {
        self.sketch.count() as usize
    }

    /// Merges another recorder's samples into this one (exact counts, sums
    /// and extremes; see [`QuantileSketch::merge`]).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.sketch.merge(&other.sketch);
    }

    /// The underlying sketch (for aggregation and serialization).
    #[must_use]
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Produces the summary statistics. Derivable from `&self`: the sketch
    /// needs no in-place sort, unlike the retained-samples recorder this
    /// replaced.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn summary(&self) -> LatencySummary {
        if self.sketch.is_empty() {
            return LatencySummary::empty();
        }
        let q = |q: f64| SimDuration::from_nanos(self.sketch.quantile(q).unwrap_or(0));
        LatencySummary {
            count: self.count(),
            mean: SimDuration::from_nanos(self.sketch.mean().unwrap_or(0.0).round() as u64),
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            p999: q(0.999),
            max: SimDuration::from_nanos(self.sketch.max().unwrap_or(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_uniform_latencies() {
        let mut r = LatencyRecorder::new();
        for us in 1..=100u64 {
            r.record(SimDuration::from_micros(us));
        }
        assert_eq!(r.count(), 100);
        let s = r.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, SimDuration::from_nanos(50_500));
        assert_eq!(s.max, SimDuration::from_micros(100));
        // Exact lower nearest-rank references are 50 / 95 / 99 µs; the
        // sketch reports within 1 % relative error of each.
        assert!(s.p50 >= SimDuration::from_micros(50).mul_f64(0.99));
        assert!(s.p50 <= SimDuration::from_micros(50).mul_f64(1.01));
        assert!(s.p95 >= SimDuration::from_micros(95).mul_f64(0.99));
        assert!(s.p99 >= SimDuration::from_micros(99).mul_f64(0.99));
        assert!(s.p999 >= s.p99 && s.p999 <= s.max);
    }

    #[test]
    fn empty_recorder_yields_empty_summary() {
        let r = LatencyRecorder::new();
        assert_eq!(r.summary(), LatencySummary::empty());
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn tail_reflects_outliers() {
        let mut r = LatencyRecorder::new();
        for _ in 0..990 {
            r.record(SimDuration::from_micros(100));
        }
        for _ in 0..10 {
            r.record(SimDuration::from_micros(1_000));
        }
        let s = r.summary();
        assert!(s.p99 >= SimDuration::from_micros(100));
        // The 1 % outliers dominate the 99.9th percentile: within the
        // sketch's 1 % relative-error contract of the exact 1 ms, and never
        // above the exact maximum.
        let exact_p999 = SimDuration::from_millis(1);
        assert!(s.p999 >= exact_p999.mul_f64(0.99));
        assert!(s.p999 <= s.max);
        assert_eq!(s.max, SimDuration::from_millis(1));
        assert!(s.mean > SimDuration::from_micros(100));
        assert!(s.mean < SimDuration::from_micros(120));
    }

    #[test]
    fn summary_needs_only_a_shared_reference() {
        let mut r = LatencyRecorder::new();
        r.record(SimDuration::from_micros(10));
        let shared: &LatencyRecorder = &r;
        let a = shared.summary();
        let b = shared.summary();
        assert_eq!(a, b);
    }

    #[test]
    fn merged_recorders_equal_one_combined_recorder() {
        let mut all = LatencyRecorder::new();
        let mut left = LatencyRecorder::new();
        let mut right = LatencyRecorder::new();
        for i in 0..1_000u64 {
            let d = SimDuration::from_nanos(50_000 + (i * 997) % 400_000);
            all.record(d);
            if i % 3 == 0 {
                left.record(d);
            } else {
                right.record(d);
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, all);
        assert_eq!(merged.summary(), all.summary());
    }
}
