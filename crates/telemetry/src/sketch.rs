//! Bounded-memory relative-error quantile sketch for latency telemetry.
//!
//! The paper's headline metrics are tail latencies (p99/p999) under
//! killer-microsecond traffic. Retaining every per-request sample makes an
//! hour-long, 100-node, million-RPS experiment memory-bound before it is
//! CPU-bound, so the result path summarises latencies with a DDSketch-style
//! log-bucketed histogram instead: O(buckets) memory per recorder with a
//! *contractual* relative-error bound on every reported quantile.
//!
//! # Error contract
//!
//! For a sketch built with relative accuracy `alpha` (the latency default is
//! `alpha = 0.01`, i.e. 1 %), every non-zero recorded value `x` lands in
//! bucket `i = ceil(ln(x) / ln(gamma))` with `gamma = (1 + alpha)/(1 -
//! alpha)`; bucket `i` covers `(gamma^(i-1), gamma^i]` and is reported as its
//! relative midpoint `2·gamma^i / (gamma + 1)`, which is within `alpha` of
//! every value in the bucket. [`QuantileSketch::quantile`] therefore returns
//! an estimate `e` with
//!
//! ```text
//! |e − exact_q| / exact_q ≤ alpha
//! ```
//!
//! where `exact_q` is the **lower nearest-rank** quantile of the recorded
//! multiset: `sorted[floor(q · (n − 1))]`. (Interpolated quantiles carry no
//! such bound — the midpoint of a sparse bimodal gap is arbitrarily far from
//! both modes — so the contract, and the accuracy suite that enforces it,
//! use the nearest-rank convention.) Estimates are additionally clamped to
//! the exact observed `[min, max]`, which makes constant and single-sample
//! distributions exact.
//!
//! # Exactness and determinism
//!
//! Values are recorded as `u64` (the result path records nanoseconds) and
//! the sketch keeps `count`, `min`, `max` exactly plus the *exact* integer
//! `sum` in a `u128` — so `mean()` is exact to f64 precision of the total,
//! and [`QuantileSketch::merge`] is **exactly** associative and commutative
//! (bucket counts and integer sums, no float accumulation order to worry
//! about) as long as no bucket collapse triggers. Collapse folds the lowest
//! buckets together once `max_buckets` is exceeded — it degrades only
//! *low* quantiles of pathologically wide distributions (the latency default
//! of 2048 buckets spans 1 ns to beyond 10^9 s at 1 % accuracy, so a
//! simulated latency never collapses) and is itself pinned by tests.
//!
//! # Serialization
//!
//! The sketch exposes its complete logical state ([`QuantileSketch::parts`])
//! and rebuilds from it ([`QuantileSketch::from_parts`]); the analysis crate
//! renders that state as JSON so a sharded sweep can checkpoint per-point
//! sketches and a later `merge` process can re-derive byte-identical
//! summaries.

/// The complete logical state of a sketch, for (de)serialization.
///
/// `buckets` holds `(index, count)` pairs for every non-empty log bucket, in
/// ascending index order; all other fields mirror the accessors of the same
/// name on [`QuantileSketch`].
#[derive(Debug, Clone, PartialEq)]
pub struct SketchParts {
    /// Relative accuracy `alpha` of the source sketch.
    pub relative_error: f64,
    /// Bucket-count bound of the source sketch.
    pub max_buckets: usize,
    /// Collapse floor, when a collapse has occurred.
    pub floor_index: Option<i32>,
    /// Number of recorded zeros.
    pub zero_count: u64,
    /// Exact sum of all recorded values.
    pub sum: u128,
    /// Smallest recorded value (`0` when empty).
    pub min: u64,
    /// Largest recorded value (`0` when empty).
    pub max: u64,
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(i32, u64)>,
}

/// DDSketch-style bounded-memory quantile sketch over `u64` values.
///
/// See the [module docs](self) for the error contract. Two sketches compare
/// equal when their logical contents (parameters, counts, extremes, sums and
/// non-empty buckets) are equal — the internal storage layout is canonical
/// for a given recording history, so parallel and sequential executions that
/// record the same values in the same order produce `==` sketches.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    /// Relative accuracy `alpha`.
    relative_error: f64,
    /// `(1 + alpha) / (1 - alpha)` — the bucket growth factor.
    gamma: f64,
    /// `1 / ln(gamma)`, cached for the per-record index computation.
    inv_ln_gamma: f64,
    /// Bound on `counts.len()`; exceeding it collapses the lowest buckets.
    max_buckets: usize,
    /// Log-bucket index of `counts[0]`.
    base_index: i32,
    /// Per-bucket counts for indices `base_index ..`; never has an empty
    /// first or last slot (the range is exactly the observed index span).
    counts: Vec<u64>,
    /// Once a collapse has happened, the index every lower value folds into
    /// (always equal to `base_index` afterwards).
    floor_index: Option<i32>,
    /// Number of recorded zeros (a log bucket cannot hold them).
    zero_count: u64,
    /// Total recorded values, including zeros.
    count: u64,
    /// Exact integer sum of every recorded value.
    sum: u128,
    /// Exact extremes; `min > max` encodes "empty".
    min: u64,
    max: u64,
}

impl QuantileSketch {
    /// A sketch with relative accuracy `alpha` and at most `max_buckets`
    /// log buckets.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1` and `max_buckets >= 2`.
    #[must_use]
    pub fn new(alpha: f64, max_buckets: usize) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "relative accuracy must be in (0, 1), got {alpha}"
        );
        assert!(
            max_buckets >= 2,
            "a sketch needs at least 2 buckets, got {max_buckets}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            relative_error: alpha,
            gamma,
            inv_ln_gamma: 1.0 / gamma.ln(),
            max_buckets,
            base_index: 0,
            counts: Vec::new(),
            floor_index: None,
            zero_count: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The latency-path default: 1 % relative error, 2048 buckets (spans
    /// 1 ns to beyond 10^9 s without ever collapsing).
    #[must_use]
    pub fn latency_default() -> Self {
        QuantileSketch::new(0.01, 2048)
    }

    /// The relative accuracy `alpha` this sketch guarantees.
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        self.relative_error
    }

    /// The bucket-count bound.
    #[must_use]
    pub fn max_buckets(&self) -> usize {
        self.max_buckets
    }

    /// Total recorded values (including zeros).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of every recorded value.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest recorded value; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded value; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean (to f64 precision of the total); `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Number of non-empty log buckets currently held (plus, logically, the
    /// zero bucket) — the memory footprint is `O(bucket_len)` regardless of
    /// how many values were recorded.
    #[must_use]
    pub fn bucket_len(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The log-bucket index a non-zero value maps to.
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    fn index_of(&self, value: u64) -> i32 {
        debug_assert!(value > 0);
        // value = 1 maps to ln(1) = 0 -> bucket 0, covering (gamma^-1, 1].
        ((value as f64).ln() * self.inv_ln_gamma).ceil() as i32
    }

    /// The representative value of bucket `index`: the point within
    /// `(gamma^(index-1), gamma^index]` whose relative distance to both ends
    /// is `alpha`.
    fn estimate_of(&self, index: i32) -> f64 {
        2.0 * self.gamma.powi(index) / (self.gamma + 1.0)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value == 0 {
            self.zero_count += 1;
            return;
        }
        let index = self
            .index_of(value)
            .max(self.floor_index.unwrap_or(i32::MIN));
        self.bump(index, 1);
        self.enforce_bound();
    }

    /// Adds `by` to the bucket at `index`, growing the contiguous range as
    /// needed.
    fn bump(&mut self, index: i32, by: u64) {
        if self.counts.is_empty() {
            self.base_index = index;
            self.counts.push(by);
            return;
        }
        if index < self.base_index {
            let grow = (self.base_index - index) as usize;
            self.counts.splice(0..0, std::iter::repeat(0).take(grow));
            self.base_index = index;
        }
        let slot = (index - self.base_index) as usize;
        if slot >= self.counts.len() {
            self.counts.resize(slot + 1, 0);
        }
        self.counts[slot] += by;
    }

    /// Collapses the lowest buckets into one until the bound holds again.
    ///
    /// Collapse trades accuracy for memory at the *low* end only: every
    /// value below the new floor is thereafter attributed to the floor
    /// bucket, so low quantiles of a collapsed sketch may exceed the error
    /// contract while the tail stays within it.
    fn enforce_bound(&mut self) {
        if self.counts.len() <= self.max_buckets {
            return;
        }
        let excess = self.counts.len() - self.max_buckets;
        let folded: u64 = self.counts.drain(..excess).sum();
        self.base_index += i32::try_from(excess).expect("bucket span fits in i32");
        self.counts[0] += folded;
        self.floor_index = Some(self.base_index);
    }

    /// Merges `other` into `self`.
    ///
    /// Counts, sums and extremes combine exactly, so (absent collapse) merge
    /// is associative and commutative and splitting one value stream across
    /// sketches then merging yields a sketch `==` to recording the stream
    /// into one sketch. Merge order still matters only for collapse, which
    /// the latency default never triggers.
    ///
    /// # Panics
    ///
    /// Panics if the sketches were built with different parameters —
    /// bucket indices are only comparable at equal `alpha`.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.relative_error == other.relative_error && self.max_buckets == other.max_buckets,
            "cannot merge sketches with different parameters \
             ({} @ {} vs {} @ {})",
            self.relative_error,
            self.max_buckets,
            other.relative_error,
            other.max_buckets,
        );
        self.count += other.count;
        self.sum += other.sum;
        self.zero_count += other.zero_count;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        // The merged floor is the higher of the two: either side's collapse
        // already folded its low buckets, so the result cannot resolve
        // below it.
        let floor = match (self.floor_index, other.floor_index) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        if let Some(floor) = floor {
            self.raise_floor(floor);
        }
        for (index, count) in other.entries() {
            self.bump(index.max(floor.unwrap_or(i32::MIN)), count);
        }
        self.floor_index = floor;
        self.enforce_bound();
    }

    /// Folds every bucket below `floor` into the `floor` bucket.
    fn raise_floor(&mut self, floor: i32) {
        if self.counts.is_empty() || floor <= self.base_index {
            return;
        }
        let cut = ((floor - self.base_index) as usize).min(self.counts.len() - 1);
        if cut == 0 {
            return;
        }
        let folded: u64 = self.counts.drain(..cut).sum();
        self.base_index += i32::try_from(cut).expect("bucket span fits in i32");
        self.counts[0] += folded;
    }

    /// The quantile estimate for `q ∈ [0, 1]`; `None` when empty.
    ///
    /// The estimate targets the **lower nearest-rank** exact quantile
    /// `sorted[floor(q · (n − 1))]` and is within relative error `alpha` of
    /// it (see the [module docs](self)), clamped to the exact observed
    /// `[min, max]`.
    #[must_use]
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        if rank < self.zero_count {
            return Some(0);
        }
        let mut seen = self.zero_count;
        for (index, count) in self.entries() {
            seen += count;
            if rank < seen {
                let estimate = self.estimate_of(index).round();
                let estimate = if estimate >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    estimate as u64
                };
                return Some(estimate.clamp(self.min, self.max));
            }
        }
        // Unreachable when the invariant `count == zero_count + Σ buckets`
        // holds; fall back to the exact maximum.
        Some(self.max)
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub fn entries(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(slot, &count)| {
                (
                    self.base_index + i32::try_from(slot).expect("bucket span fits in i32"),
                    count,
                )
            })
    }

    /// The complete logical state, for serialization.
    #[must_use]
    pub fn parts(&self) -> SketchParts {
        SketchParts {
            relative_error: self.relative_error,
            max_buckets: self.max_buckets,
            floor_index: self.floor_index,
            zero_count: self.zero_count,
            sum: self.sum,
            min: if self.count > 0 { self.min } else { 0 },
            max: self.max,
            buckets: self.entries().collect(),
        }
    }

    /// Rebuilds a sketch from serialized [`SketchParts`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found (parameters
    /// out of range, buckets out of order, more buckets than the bound).
    pub fn from_parts(parts: &SketchParts) -> Result<QuantileSketch, String> {
        if !(parts.relative_error > 0.0 && parts.relative_error < 1.0) {
            return Err(format!(
                "sketch relative error must be in (0, 1), got {}",
                parts.relative_error
            ));
        }
        if parts.max_buckets < 2 {
            return Err(format!(
                "sketch needs at least 2 buckets, got {}",
                parts.max_buckets
            ));
        }
        if parts.buckets.len() > parts.max_buckets {
            return Err(format!(
                "sketch holds {} buckets, above its bound {}",
                parts.buckets.len(),
                parts.max_buckets
            ));
        }
        let mut sketch = QuantileSketch::new(parts.relative_error, parts.max_buckets);
        let mut bucket_count: u64 = 0;
        for window in parts.buckets.windows(2) {
            if window[0].0 >= window[1].0 {
                return Err(format!(
                    "sketch buckets out of order: index {} then {}",
                    window[0].0, window[1].0
                ));
            }
        }
        for &(index, count) in &parts.buckets {
            if count == 0 {
                return Err(format!("sketch bucket {index} has zero count"));
            }
            if let Some(floor) = parts.floor_index {
                if index < floor {
                    return Err(format!(
                        "sketch bucket {index} lies below its collapse floor {floor}"
                    ));
                }
            }
            sketch.bump(index, count);
            bucket_count += count;
        }
        sketch.floor_index = parts.floor_index;
        sketch.zero_count = parts.zero_count;
        sketch.count = parts.zero_count + bucket_count;
        sketch.sum = parts.sum;
        if sketch.count > 0 {
            if parts.min > parts.max {
                return Err(format!(
                    "sketch min {} exceeds max {}",
                    parts.min, parts.max
                ));
            }
            sketch.min = parts.min;
            sketch.max = parts.max;
        }
        Ok(sketch)
    }
}

impl PartialEq for QuantileSketch {
    /// Logical equality: parameters, totals, extremes, collapse floor and
    /// the non-empty bucket contents.
    fn eq(&self, other: &QuantileSketch) -> bool {
        self.relative_error == other.relative_error
            && self.max_buckets == other.max_buckets
            && self.count == other.count
            && self.sum == other.sum
            && self.zero_count == other.zero_count
            && self.floor_index == other.floor_index
            && (self.count == 0 || (self.min == other.min && self.max == other.max))
            && self.entries().eq(other.entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact lower nearest-rank quantile the contract targets.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
        sorted[rank]
    }

    fn assert_within_contract(sketch: &QuantileSketch, sorted: &[u64], q: f64) {
        let exact = exact_quantile(sorted, q);
        let got = sketch.quantile(q).expect("non-empty sketch");
        #[allow(clippy::cast_precision_loss)]
        let rel = if exact == 0 {
            got as f64
        } else {
            (got as f64 - exact as f64).abs() / exact as f64
        };
        assert!(
            rel <= sketch.relative_error(),
            "q={q}: sketch {got} vs exact {exact} (relative error {rel})"
        );
    }

    #[test]
    fn empty_sketch_reports_nothing() {
        let s = QuantileSketch::latency_default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let mut s = QuantileSketch::latency_default();
        s.record(123_456);
        for q in [0.0, 0.5, 0.95, 0.999, 1.0] {
            assert_eq!(s.quantile(q), Some(123_456));
        }
        assert_eq!(s.mean(), Some(123_456.0));
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut s = QuantileSketch::latency_default();
        for _ in 0..10_000 {
            s.record(777);
        }
        assert_eq!(s.quantile(0.5), Some(777));
        assert_eq!(s.quantile(0.999), Some(777));
        assert_eq!(s.mean(), Some(777.0));
    }

    #[test]
    fn zeros_live_in_the_zero_bucket() {
        let mut s = QuantileSketch::latency_default();
        for _ in 0..90 {
            s.record(0);
        }
        for _ in 0..10 {
            s.record(1_000);
        }
        assert_eq!(s.quantile(0.5), Some(0));
        assert_eq!(s.quantile(0.99), Some(1_000));
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(1_000));
    }

    #[test]
    fn geometric_ramp_stays_within_contract() {
        let mut s = QuantileSketch::latency_default();
        let mut values: Vec<u64> = (0..2_000).map(|i| 100 + 17 * i * i).collect();
        for &v in &values {
            s.record(v);
        }
        values.sort_unstable();
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_within_contract(&s, &values, q);
        }
    }

    #[test]
    fn mean_and_sum_are_exact_integers() {
        let mut s = QuantileSketch::latency_default();
        for v in 1..=1_000_u64 {
            s.record(v * 1_000_003);
        }
        assert_eq!(s.sum(), 1_000_003 * 500_500);
        assert_eq!(s.count(), 1_000);
        assert_eq!(s.mean(), Some(1_000_003.0 * 500.5));
    }

    #[test]
    fn merge_equals_recording_the_concatenation() {
        let mut whole = QuantileSketch::latency_default();
        let mut left = QuantileSketch::latency_default();
        let mut right = QuantileSketch::latency_default();
        for i in 0..5_000_u64 {
            let v = (i * 2_654_435_761) % 1_000_000;
            whole.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, whole);

        // Commutativity: the opposite order produces the same sketch.
        let mut swapped = right.clone();
        swapped.merge(&left);
        assert_eq!(swapped, merged);
    }

    #[test]
    fn merging_an_empty_sketch_is_identity() {
        let mut s = QuantileSketch::latency_default();
        s.record(42);
        let before = s.clone();
        s.merge(&QuantileSketch::latency_default());
        assert_eq!(s, before);

        let mut empty = QuantileSketch::latency_default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn merging_mismatched_parameters_panics() {
        let mut a = QuantileSketch::new(0.01, 2048);
        let b = QuantileSketch::new(0.02, 2048);
        a.merge(&b);
    }

    #[test]
    fn collapse_bounds_memory_and_keeps_the_tail() {
        // 8 buckets force collapse on a stream spanning many decades.
        let mut s = QuantileSketch::new(0.01, 8);
        let mut values: Vec<u64> = (0..14).map(|e| 1_u64 << e).collect();
        for &v in &values {
            s.record(v);
        }
        values.sort_unstable();
        assert!(s.bucket_len() <= 8, "collapse must bound the bucket count");
        // The tail is still within contract; low quantiles may not be.
        assert_within_contract(&s, &values, 1.0);
        assert_eq!(s.count(), 14);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(1 << 13));
        assert!(s.floor_index.is_some());
    }

    #[test]
    fn latency_default_never_collapses_over_nine_decades() {
        let mut s = QuantileSketch::latency_default();
        let mut v = 1_u64;
        while v < 1_000_000_000_000 {
            s.record(v);
            v = (v * 3 / 2).max(v + 1);
        }
        assert!(
            s.floor_index.is_none(),
            "1 ns .. 1000 s must fit uncollapsed"
        );
        assert!(s.bucket_len() <= 2048);
    }

    #[test]
    fn parts_round_trip_is_identity() {
        let mut s = QuantileSketch::latency_default();
        for i in 0..1_000_u64 {
            s.record(i * i % 700_000);
        }
        let rebuilt = QuantileSketch::from_parts(&s.parts()).expect("valid parts");
        assert_eq!(rebuilt, s);
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(rebuilt.quantile(q), s.quantile(q));
        }
    }

    #[test]
    fn from_parts_rejects_inconsistencies() {
        let good = {
            let mut s = QuantileSketch::latency_default();
            s.record(10);
            s.record(1_000);
            s.parts()
        };

        let mut shuffled = good.clone();
        shuffled.buckets.reverse();
        assert!(QuantileSketch::from_parts(&shuffled)
            .unwrap_err()
            .contains("out of order"));

        let mut inverted = good.clone();
        inverted.min = inverted.max + 1;
        assert!(QuantileSketch::from_parts(&inverted)
            .unwrap_err()
            .contains("exceeds max"));

        let mut bad_alpha = good.clone();
        bad_alpha.relative_error = 1.5;
        assert!(QuantileSketch::from_parts(&bad_alpha)
            .unwrap_err()
            .contains("relative error"));

        let mut below_floor = good;
        below_floor.floor_index = Some(i32::MAX);
        assert!(QuantileSketch::from_parts(&below_floor)
            .unwrap_err()
            .contains("collapse floor"));
    }
}
