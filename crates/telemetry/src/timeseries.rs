//! Time-series telemetry: periodic samples of a server's observable state.
//!
//! The paper's time-domain figures (entry/exit flow traces, load curves
//! riding a diurnal day) need *trajectories*, not run aggregates: power,
//! package-state residency and queue depth as functions of simulated time.
//! A [`TimeSeries`] accumulates those samples at a fixed interval; the
//! server crate's sampler component fills one per node when the experiment
//! configuration enables it, and the analysis crate's export module renders
//! it as CSV for plotting.
//!
//! Residency is recorded as *deltas*: each sample carries the time spent in
//! each package C-state since the previous sample, so a stacked-area plot
//! of the deltas reconstructs the residency timeline exactly (the deltas of
//! one interval always sum to the interval length).

use apc_sim::{SimDuration, SimTime};
use apc_soc::cstate::PackageCState;

/// One periodic sample of a node's observable state.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesSample {
    /// Simulated timestamp of the sample.
    pub at: SimTime,
    /// Instantaneous SoC (package) power, in watts.
    pub soc_power_w: f64,
    /// Client requests outstanding at the node (buffered, queued, reserved
    /// or in service).
    pub queue_depth: usize,
    /// Cores executing work at the sample instant.
    pub busy_cores: usize,
    /// Package C-state at the sample instant.
    pub package_state: PackageCState,
    /// Time spent in PC0 (package active) since the previous sample.
    pub pc0_delta: SimDuration,
    /// Time spent in PC0 with all cores idle since the previous sample.
    pub pc0_idle_delta: SimDuration,
    /// Time spent in PC1A since the previous sample.
    pub pc1a_delta: SimDuration,
    /// Time spent in PC6 since the previous sample.
    pub pc6_delta: SimDuration,
}

/// A fixed-interval sequence of [`TimeSeriesSample`]s for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    interval: SimDuration,
    samples: Vec<TimeSeriesSample>,
}

impl TimeSeries {
    /// An empty series sampled every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (a zero-interval sampler would re-arm
    /// itself at the current instant forever).
    #[must_use]
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "time-series interval must be positive");
        TimeSeries {
            interval,
            samples: Vec::new(),
        }
    }

    /// The configured sampling interval.
    #[must_use]
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Appends one sample (samplers call this in timestamp order).
    pub fn push(&mut self, sample: TimeSeriesSample) {
        debug_assert!(
            !self.samples.last().is_some_and(|prev| prev.at >= sample.at),
            "time-series samples must be pushed in strictly increasing time order"
        );
        self.samples.push(sample);
    }

    /// The recorded samples, in timestamp order.
    #[must_use]
    pub fn samples(&self) -> &[TimeSeriesSample] {
        &self.samples
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_us: u64) -> TimeSeriesSample {
        TimeSeriesSample {
            at: SimTime::from_micros(at_us),
            soc_power_w: 44.0,
            queue_depth: 2,
            busy_cores: 1,
            package_state: PackageCState::PC0,
            pc0_delta: SimDuration::from_micros(80),
            pc0_idle_delta: SimDuration::from_micros(20),
            pc1a_delta: SimDuration::ZERO,
            pc6_delta: SimDuration::ZERO,
        }
    }

    #[test]
    fn series_records_in_order() {
        let mut ts = TimeSeries::new(SimDuration::from_micros(100));
        assert!(ts.is_empty());
        ts.push(sample(0));
        ts.push(sample(100));
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.samples()[1].at, SimTime::from_micros(100));
        assert_eq!(ts.interval(), SimDuration::from_micros(100));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_is_rejected() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }
}
