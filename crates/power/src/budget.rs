//! Package-state power budgets (the Table 1 composition).
//!
//! [`PackageStatePower`] composes the per-domain [`PowerModel`] constants
//! into the SoC + DRAM power of each package operating point, reproducing
//! Table 1 of the paper without running a full simulation. The full-system
//! simulation arrives at the same numbers by integrating component states
//! over time; this module is the closed-form cross-check.

use std::fmt;

use apc_soc::clm::ClmState;
use apc_soc::cstate::{CoreCState, PackageCState};
use apc_soc::io::{IoKind, LinkPowerState};
use apc_soc::memory::DramPowerMode;
use apc_soc::topology::SocConfig;

use crate::model::PowerModel;
use crate::units::Watts;

/// The component configuration of one package operating point: which state
/// each class of component sits in (a row of the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackageStateRecipe {
    /// The package C-state this recipe describes.
    pub package: PackageCState,
    /// The core C-state all cores reside in (for PC0 this is the state of
    /// the *active* cores; see [`PackageStatePower::pc0_power`]).
    pub cores: CoreCState,
    /// The CLM domain state.
    pub clm: ClmState,
    /// PCIe/DMI link state.
    pub pcie: LinkPowerState,
    /// UPI link state.
    pub upi: LinkPowerState,
    /// DRAM power mode.
    pub dram: DramPowerMode,
    /// Whether the uncore PLLs remain locked.
    pub plls_on: bool,
}

impl PackageStateRecipe {
    /// The recipe for a given package C-state, following Table 2.
    #[must_use]
    pub fn for_state(package: PackageCState) -> Self {
        match package {
            PackageCState::PC0 => PackageStateRecipe {
                package,
                cores: CoreCState::CC0,
                clm: ClmState::Operational,
                pcie: LinkPowerState::L0,
                upi: LinkPowerState::L0,
                dram: DramPowerMode::Active,
                plls_on: true,
            },
            PackageCState::PC0Idle | PackageCState::PC2 => PackageStateRecipe {
                package,
                cores: CoreCState::CC1,
                clm: ClmState::Operational,
                pcie: LinkPowerState::L0,
                upi: LinkPowerState::L0,
                dram: DramPowerMode::Active,
                plls_on: true,
            },
            PackageCState::PC6 => PackageStateRecipe {
                package,
                cores: CoreCState::CC6,
                clm: ClmState::Retention,
                pcie: LinkPowerState::L1,
                upi: LinkPowerState::L1,
                dram: DramPowerMode::SelfRefresh,
                plls_on: false,
            },
            PackageCState::PC1A => PackageStateRecipe {
                package,
                cores: CoreCState::CC1,
                clm: ClmState::Retention,
                pcie: LinkPowerState::L0s,
                upi: LinkPowerState::L0p,
                dram: DramPowerMode::PrechargePowerDown,
                plls_on: true,
            },
        }
    }
}

/// SoC and DRAM power of one package operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatePower {
    /// SoC (package) power.
    pub soc: Watts,
    /// DRAM device power.
    pub dram: Watts,
}

impl StatePower {
    /// SoC + DRAM.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.soc + self.dram
    }
}

impl fmt::Display for StatePower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {} = {}", self.soc, self.dram, self.total())
    }
}

/// Computes package-state power budgets for a socket configuration.
#[derive(Debug, Clone)]
pub struct PackageStatePower {
    model: PowerModel,
    config: SocConfig,
}

impl PackageStatePower {
    /// Creates the budget calculator.
    #[must_use]
    pub fn new(model: PowerModel, config: SocConfig) -> Self {
        PackageStatePower { model, config }
    }

    /// The calculator for the paper's reference system and calibration.
    #[must_use]
    pub fn skx_reference() -> Self {
        PackageStatePower::new(PowerModel::skx_calibrated(), SocConfig::xeon_silver_4114())
    }

    /// The underlying power model.
    #[must_use]
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Power of the operating point where all cores execute (`PC0` row of
    /// Table 1: "`PC0 / ≥1 CC0`", reported at full utilisation).
    #[must_use]
    pub fn pc0_power(&self) -> StatePower {
        self.power_for(&PackageStateRecipe::for_state(PackageCState::PC0), 1.0)
    }

    /// Power of an arbitrary package state per its Table 2 recipe. DRAM
    /// utilisation is zero for every idle state.
    #[must_use]
    pub fn state_power(&self, state: PackageCState) -> StatePower {
        let util = if state == PackageCState::PC0 {
            1.0
        } else {
            0.0
        };
        self.power_for(&PackageStateRecipe::for_state(state), util)
    }

    /// Power for an explicit recipe (used by the Sec. 5.4 breakdown
    /// experiments which mix and match component states).
    #[must_use]
    pub fn power_for(&self, recipe: &PackageStateRecipe, dram_utilization: f64) -> StatePower {
        let m = &self.model;
        let n_cores = self.config.cores as f64;
        let cores = m.core_power(recipe.cores) * n_cores;

        let clm = m.clm_power(recipe.clm);

        let mut io = Watts::ZERO;
        for kind in &self.config.io_kinds {
            let state = match kind {
                IoKind::Pcie | IoKind::Dmi => recipe.pcie,
                IoKind::Upi => recipe.upi,
            };
            io += m.io_power(*kind, state);
        }
        let mcs = m.mc_power(recipe.dram) * self.config.memory_controllers as f64;

        let plls = if recipe.plls_on {
            // Uncore PLLs: one per IO controller, one for CLM/MC, one for the GPMU.
            Watts(m.pll_locked) * (self.config.io_kinds.len() as f64 + 2.0)
        } else {
            Watts::ZERO
        };

        let soc = cores + clm + io + mcs + plls + Watts(m.north_cap_base);
        let dram = m.dram_power(recipe.dram, dram_utilization);
        StatePower { soc, dram }
    }

    /// The Eq. 2 / Eq. 3 component deltas between PC1A and PC6
    /// (`Pcores_diff`, `PIOs_diff`, `PPLLs_diff`, `Pdram_diff`), in watts.
    #[must_use]
    pub fn pc1a_component_deltas(&self) -> ComponentDeltas {
        let m = &self.model;
        let n_cores = self.config.cores as f64;
        let cores_diff = n_cores * (m.core_cc1 - m.core_cc6);

        let pc1a = PackageStateRecipe::for_state(PackageCState::PC1A);
        let pc6 = PackageStateRecipe::for_state(PackageCState::PC6);
        let io_of = |r: &PackageStateRecipe| -> f64 {
            let mut total = 0.0;
            for kind in &self.config.io_kinds {
                let state = match kind {
                    IoKind::Pcie | IoKind::Dmi => r.pcie,
                    IoKind::Upi => r.upi,
                };
                total += m.io_power(*kind, state).as_f64();
            }
            total + m.mc_power(r.dram).as_f64() * self.config.memory_controllers as f64
        };
        let ios_diff = io_of(&pc1a) - io_of(&pc6);
        let plls_diff = m.pll_locked * (self.config.io_kinds.len() as f64 + 2.0);
        let dram_diff =
            m.dram_power(pc1a.dram, 0.0).as_f64() - m.dram_power(pc6.dram, 0.0).as_f64();

        ComponentDeltas {
            cores: Watts(cores_diff),
            ios: Watts(ios_diff),
            plls: Watts(plls_diff),
            dram: Watts(dram_diff),
        }
    }
}

impl Default for PackageStatePower {
    fn default() -> Self {
        PackageStatePower::skx_reference()
    }
}

/// The Sec. 5.4 component power deltas between PC1A and PC6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentDeltas {
    /// `Pcores_diff`: all cores in CC1 vs. CC6.
    pub cores: Watts,
    /// `PIOs_diff`: IOs + MCs in shallow vs. deep power states.
    pub ios: Watts,
    /// `PPLLs_diff`: uncore PLLs on vs. off.
    pub plls: Watts,
    /// `Pdram_diff`: DRAM in CKE-off vs. self-refresh.
    pub dram: Watts,
}

impl ComponentDeltas {
    /// Reconstructs PC1A power from PC6 power via Eq. 2 / Eq. 3.
    #[must_use]
    pub fn apply_to(&self, pc6: StatePower) -> StatePower {
        StatePower {
            soc: pc6.soc + self.cores + self.ios + self.plls,
            dram: pc6.dram + self.dram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> PackageStatePower {
        PackageStatePower::skx_reference()
    }

    #[test]
    fn table1_pc0idle() {
        let p = budget().state_power(PackageCState::PC0Idle);
        assert!((p.soc.as_f64() - 44.0).abs() < 0.35, "SoC {}", p.soc);
        assert!((p.dram.as_f64() - 5.5).abs() < 0.1, "DRAM {}", p.dram);
        assert!((p.total().as_f64() - 49.5).abs() < 0.4);
    }

    #[test]
    fn table1_pc6() {
        let p = budget().state_power(PackageCState::PC6);
        assert!((p.soc.as_f64() - 11.9).abs() < 0.35, "SoC {}", p.soc);
        assert!((p.dram.as_f64() - 0.51).abs() < 0.05, "DRAM {}", p.dram);
        assert!((p.total().as_f64() - 12.5).abs() < 0.4);
    }

    #[test]
    fn table1_pc1a() {
        let p = budget().state_power(PackageCState::PC1A);
        assert!((p.soc.as_f64() - 27.5).abs() < 0.35, "SoC {}", p.soc);
        assert!((p.dram.as_f64() - 1.6).abs() < 0.1, "DRAM {}", p.dram);
        assert!((p.total().as_f64() - 29.1).abs() < 0.4);
    }

    #[test]
    fn table1_pc0_full_load() {
        let p = budget().pc0_power();
        assert!(p.soc.as_f64() <= 85.5, "SoC {}", p.soc);
        assert!(p.soc.as_f64() > 80.0);
        assert!((p.dram.as_f64() - 7.0).abs() < 0.1);
    }

    #[test]
    fn pc1a_sits_between_pc0idle_and_pc6() {
        let b = budget();
        let idle = b.state_power(PackageCState::PC0Idle).total().as_f64();
        let pc6 = b.state_power(PackageCState::PC6).total().as_f64();
        let pc1a = b.state_power(PackageCState::PC1A).total().as_f64();
        assert!(pc1a < idle);
        assert!(pc1a > pc6);
    }

    #[test]
    fn idle_power_reduction_is_about_41_percent() {
        // Sec. 2: for an idle server PC1A reduces SoC+DRAM power by ~41 %.
        let b = budget();
        let idle = b.state_power(PackageCState::PC0Idle).total().as_f64();
        let pc1a = b.state_power(PackageCState::PC1A).total().as_f64();
        let saving = 1.0 - pc1a / idle;
        assert!(
            (saving - 0.41).abs() < 0.02,
            "idle saving {saving:.3} should be ~0.41"
        );
    }

    #[test]
    fn sec54_component_deltas() {
        let d = budget().pc1a_component_deltas();
        assert!((d.cores.as_f64() - 12.1).abs() < 0.1, "cores {}", d.cores);
        assert!((d.ios.as_f64() - 3.5).abs() < 0.15, "ios {}", d.ios);
        assert!((d.plls.as_f64() - 0.056).abs() < 1e-9, "plls {}", d.plls);
        assert!((d.dram.as_f64() - 1.1).abs() < 0.05, "dram {}", d.dram);
    }

    #[test]
    fn eq2_eq3_reconstruct_pc1a_from_pc6() {
        let b = budget();
        let pc6 = b.state_power(PackageCState::PC6);
        let reconstructed = b.pc1a_component_deltas().apply_to(pc6);
        let direct = b.state_power(PackageCState::PC1A);
        assert!((reconstructed.soc.as_f64() - direct.soc.as_f64()).abs() < 1e-9);
        assert!((reconstructed.dram.as_f64() - direct.dram.as_f64()).abs() < 1e-9);
        assert!(reconstructed.to_string().contains('='));
    }

    #[test]
    fn recipes_follow_table2() {
        let pc1a = PackageStateRecipe::for_state(PackageCState::PC1A);
        assert_eq!(pc1a.cores, CoreCState::CC1);
        assert_eq!(pc1a.pcie, LinkPowerState::L0s);
        assert_eq!(pc1a.upi, LinkPowerState::L0p);
        assert_eq!(pc1a.dram, DramPowerMode::PrechargePowerDown);
        assert!(pc1a.plls_on);

        let pc6 = PackageStateRecipe::for_state(PackageCState::PC6);
        assert_eq!(pc6.cores, CoreCState::CC6);
        assert_eq!(pc6.pcie, LinkPowerState::L1);
        assert_eq!(pc6.dram, DramPowerMode::SelfRefresh);
        assert!(!pc6.plls_on);

        let pc0 = PackageStateRecipe::for_state(PackageCState::PC0);
        assert_eq!(pc0.cores, CoreCState::CC0);
        assert!(pc0.plls_on);
    }
}
