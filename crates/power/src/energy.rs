//! Energy accounting over a simulated timeline.
//!
//! The full-system simulation is piecewise-constant in power: between two
//! consecutive events every component stays in its state, so the power drawn
//! in that interval is constant. [`EnergyMeter`] integrates those intervals
//! into per-domain energy and derives average power, which is what the
//! paper's figures report.

use apc_sim::{SimDuration, SimTime};

use crate::model::PowerBreakdown;
use crate::units::{Joules, Watts};

/// Cumulative energy per domain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy consumed by the CPU cores.
    pub cores: Joules,
    /// Energy consumed by the CLM domain.
    pub clm: Joules,
    /// Energy consumed by IO controllers, PHYs and memory controllers.
    pub io: Joules,
    /// Energy consumed by the uncore PLLs.
    pub plls: Joules,
    /// Energy consumed by always-on north-cap infrastructure.
    pub uncore_misc: Joules,
    /// Energy consumed by DRAM devices.
    pub dram: Joules,
}

impl EnergyBreakdown {
    /// Total SoC (package) energy.
    #[must_use]
    pub fn soc_total(&self) -> Joules {
        self.cores + self.clm + self.io + self.plls + self.uncore_misc
    }

    /// Total SoC + DRAM energy.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.soc_total() + self.dram
    }
}

/// Integrates piecewise-constant power into energy.
///
/// # Examples
///
/// ```
/// use apc_power::energy::EnergyMeter;
/// use apc_power::model::PowerBreakdown;
/// use apc_power::units::Watts;
/// use apc_sim::SimTime;
///
/// let mut meter = EnergyMeter::new(SimTime::ZERO);
/// let mut power = PowerBreakdown::default();
/// power.cores = Watts(10.0);
///
/// // 10 W held for 1 ms = 10 mJ.
/// meter.advance(SimTime::from_millis(1), &power);
/// assert!((meter.energy().cores.as_f64() - 0.01).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    last: SimTime,
    start: SimTime,
    energy: EnergyBreakdown,
}

impl EnergyMeter {
    /// Creates a meter starting its integration window at `start`.
    #[must_use]
    pub fn new(start: SimTime) -> Self {
        EnergyMeter {
            last: start,
            start,
            energy: EnergyBreakdown::default(),
        }
    }

    /// Advances the meter to `now`, attributing the elapsed interval to the
    /// given power breakdown (the power that has been drawn *since the last
    /// call*). Calls with `now` earlier than the last timestamp are ignored.
    pub fn advance(&mut self, now: SimTime, power: &PowerBreakdown) {
        if now <= self.last {
            return;
        }
        let dt = now - self.last;
        self.energy.cores += power.cores.over(dt);
        self.energy.clm += power.clm.over(dt);
        self.energy.io += power.io.over(dt);
        self.energy.plls += power.plls.over(dt);
        self.energy.uncore_misc += power.uncore_misc.over(dt);
        self.energy.dram += power.dram.over(dt);
        self.last = now;
    }

    /// The accumulated energy so far.
    #[must_use]
    pub fn energy(&self) -> &EnergyBreakdown {
        &self.energy
    }

    /// The timestamp the meter has been advanced to (the last accounting
    /// point). An [`EnergyMeter::advance`] to this time or earlier is a
    /// no-op, which lets callers skip computing the power breakdown for
    /// zero-length intervals.
    #[must_use]
    pub fn last(&self) -> SimTime {
        self.last
    }

    /// Total elapsed (integrated) time.
    #[must_use]
    pub fn elapsed(&self) -> SimDuration {
        self.last - self.start
    }

    /// Average SoC (package) power over the integration window.
    #[must_use]
    pub fn average_soc_power(&self) -> Watts {
        self.energy.soc_total().average_power(self.elapsed())
    }

    /// Average DRAM power over the integration window.
    #[must_use]
    pub fn average_dram_power(&self) -> Watts {
        self.energy.dram.average_power(self.elapsed())
    }

    /// Average SoC + DRAM power over the integration window.
    #[must_use]
    pub fn average_total_power(&self) -> Watts {
        self.energy.total().average_power(self.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power(cores: f64, dram: f64) -> PowerBreakdown {
        PowerBreakdown {
            cores: Watts(cores),
            dram: Watts(dram),
            ..PowerBreakdown::default()
        }
    }

    #[test]
    fn integrates_piecewise_constant_power() {
        let mut m = EnergyMeter::new(SimTime::ZERO);
        m.advance(SimTime::from_millis(500), &power(10.0, 2.0));
        m.advance(SimTime::from_secs(1), &power(20.0, 4.0));
        // 10 W * 0.5 s + 20 W * 0.5 s = 15 J; DRAM: 1 + 2 = 3 J.
        assert!((m.energy().cores.as_f64() - 15.0).abs() < 1e-9);
        assert!((m.energy().dram.as_f64() - 3.0).abs() < 1e-9);
        assert!((m.average_soc_power().as_f64() - 15.0).abs() < 1e-9);
        assert!((m.average_dram_power().as_f64() - 3.0).abs() < 1e-9);
        assert!((m.average_total_power().as_f64() - 18.0).abs() < 1e-9);
        assert_eq!(m.elapsed(), SimDuration::from_secs(1));
    }

    #[test]
    fn non_monotonic_updates_are_ignored() {
        let mut m = EnergyMeter::new(SimTime::from_millis(10));
        m.advance(SimTime::from_millis(5), &power(100.0, 0.0));
        assert_eq!(m.energy().cores, Joules::ZERO);
        m.advance(SimTime::from_millis(10), &power(100.0, 0.0));
        assert_eq!(m.energy().cores, Joules::ZERO);
        m.advance(SimTime::from_millis(20), &power(100.0, 0.0));
        assert!((m.energy().cores.as_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_totals() {
        let e = EnergyBreakdown {
            cores: Joules(1.0),
            clm: Joules(2.0),
            io: Joules(3.0),
            plls: Joules(0.5),
            uncore_misc: Joules(0.5),
            dram: Joules(4.0),
        };
        assert!((e.soc_total().as_f64() - 7.0).abs() < 1e-12);
        assert!((e.total().as_f64() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn zero_window_average_power_is_zero() {
        let m = EnergyMeter::new(SimTime::ZERO);
        assert_eq!(m.average_soc_power(), Watts::ZERO);
        assert_eq!(m.elapsed(), SimDuration::ZERO);
    }
}
