//! Per-domain power model calibrated against the paper's measurements.
//!
//! The paper reduces all of its RAPL measurements to a small number of
//! per-state power levels (Table 1 and Sec. 5.4). This module encodes those
//! levels as per-component constants chosen so that their composition
//! reproduces the paper's package-level numbers:
//!
//! | Operating point | SoC | DRAM |
//! |---|---|---|
//! | PC0, all cores active | ≈ 85 W | ≈ 7 W |
//! | PC0idle (all cores CC1) | ≈ 44 W | ≈ 5.5 W |
//! | PC6 | ≈ 11.9 W | ≈ 0.51 W |
//! | PC1A | ≈ 27.5 W | ≈ 1.6 W |
//!
//! and the Sec. 5.4 deltas: `Pcores_diff ≈ 12.1 W`, `PIOs_diff ≈ 3.5 W`,
//! `PPLLs_diff ≈ 56 mW`, `Pdram_diff ≈ 1.1 W`.

use std::fmt;

use apc_soc::clm::ClmState;
use apc_soc::cstate::CoreCState;
use apc_soc::io::{IoKind, LinkPowerState};
use apc_soc::memory::DramPowerMode;
use apc_soc::pll::PllState;
use apc_soc::topology::SkxSoc;

use crate::units::Watts;

/// Instantaneous power of a socket broken down by domain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// All CPU cores (including their private caches and per-core PLLs).
    pub cores: Watts,
    /// The CLM domain (CHA + LLC + mesh).
    pub clm: Watts,
    /// High-speed IO controllers, their PHYs and the memory controllers.
    pub io: Watts,
    /// Uncore (non-core) PLLs.
    pub plls: Watts,
    /// Always-on north-cap infrastructure (GPMU, fuses, reference clocks).
    pub uncore_misc: Watts,
    /// DRAM devices (reported separately, as RAPL does).
    pub dram: Watts,
}

impl PowerBreakdown {
    /// Total SoC (package) power: everything except DRAM devices.
    #[must_use]
    pub fn soc_total(&self) -> Watts {
        self.cores + self.clm + self.io + self.plls + self.uncore_misc
    }

    /// Total SoC + DRAM power.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.soc_total() + self.dram
    }

    /// Fraction of SoC + DRAM power consumed by the uncore and DRAM
    /// (everything except the cores). The paper's motivation (Sec. 2) is that
    /// this exceeds 65 % when all cores idle in CC1.
    #[must_use]
    pub fn uncore_and_dram_fraction(&self) -> f64 {
        let total = self.total().as_f64();
        if total <= 0.0 {
            return 0.0;
        }
        (total - self.cores.as_f64()) / total
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cores {} | CLM {} | IO+MC {} | PLLs {} | misc {} | SoC {} | DRAM {}",
            self.cores,
            self.clm,
            self.io,
            self.plls,
            self.uncore_misc,
            self.soc_total(),
            self.dram
        )
    }
}

/// The calibrated per-domain power model.
///
/// All constants are in watts. The [`PowerModel::skx_calibrated`] constructor
/// returns the values used throughout the reproduction; experiments that want
/// to explore sensitivity can construct modified models.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Power of one core executing at nominal frequency (CC0).
    pub core_cc0: f64,
    /// Power of one core halted in CC1.
    pub core_cc1: f64,
    /// Power of one core in CC1E (reduced voltage/frequency halt).
    pub core_cc1e: f64,
    /// Power of one core power-gated in CC6.
    pub core_cc6: f64,
    /// CLM power with clocks running at nominal voltage.
    pub clm_nominal: f64,
    /// CLM power with the clock tree gated but voltage nominal.
    pub clm_clock_gated: f64,
    /// CLM power at retention voltage.
    pub clm_retention: f64,
    /// Per-link power of a PCIe/DMI controller + PHY in L0.
    pub pcie_l0: f64,
    /// Per-link power in L0s (~50 % saving, paper Sec. 3.1).
    pub pcie_l0s: f64,
    /// Per-link power of a UPI controller + PHY in L0.
    pub upi_l0: f64,
    /// Per-link UPI power in L0p (~25 % saving).
    pub upi_l0p: f64,
    /// Per-link power in L1 (link off, keep-alive only).
    pub link_l1: f64,
    /// Per-memory-controller power with CKE asserted (active standby).
    pub mc_active: f64,
    /// Per-memory-controller power with DRAM in CKE-off.
    pub mc_cke_off: f64,
    /// Per-memory-controller power with DRAM in self-refresh.
    pub mc_self_refresh: f64,
    /// Power of one uncore all-digital PLL while locked.
    pub pll_locked: f64,
    /// Always-on north-cap infrastructure power.
    pub north_cap_base: f64,
    /// DRAM device power when idle but clocked (active standby), whole system.
    pub dram_idle: f64,
    /// Additional DRAM device power at 100 % memory-bandwidth utilisation.
    pub dram_active_extra: f64,
    /// DRAM device power with all ranks in CKE-off.
    pub dram_cke_off: f64,
    /// DRAM device power in self-refresh.
    pub dram_self_refresh: f64,
    /// Extra per-core power when running at the turbo operating point
    /// (not exercised by the paper's experiments, which pin nominal
    /// frequency, but needed to model the `Cdeep` powersave governor's
    /// frequency excursions conservatively).
    pub core_turbo_extra: f64,
}

impl PowerModel {
    /// The calibration used throughout the reproduction (see module docs).
    #[must_use]
    pub fn skx_calibrated() -> Self {
        PowerModel {
            core_cc0: 5.46,
            core_cc1: 1.36,
            core_cc1e: 0.95,
            core_cc6: 0.15,
            clm_nominal: 17.94,
            clm_clock_gated: 11.5,
            clm_retention: 7.0,
            pcie_l0: 1.3,
            pcie_l0s: 0.52,
            upi_l0: 1.3,
            upi_l0p: 0.85,
            link_l1: 0.10,
            mc_active: 1.1,
            mc_cke_off: 0.36,
            mc_self_refresh: 0.20,
            pll_locked: 0.007,
            north_cap_base: 2.4,
            dram_idle: 5.5,
            dram_active_extra: 1.5,
            dram_cke_off: 1.6,
            dram_self_refresh: 0.51,
            core_turbo_extra: 1.8,
        }
    }

    /// Power of one core in the given C-state.
    #[must_use]
    pub fn core_power(&self, state: CoreCState) -> Watts {
        Watts(match state {
            CoreCState::CC0 => self.core_cc0,
            CoreCState::CC1 => self.core_cc1,
            CoreCState::CC1E => self.core_cc1e,
            CoreCState::CC6 => self.core_cc6,
        })
    }

    /// Power of the CLM domain in the given state.
    #[must_use]
    pub fn clm_power(&self, state: ClmState) -> Watts {
        Watts(match state {
            ClmState::Operational => self.clm_nominal,
            ClmState::ClockGated => self.clm_clock_gated,
            ClmState::Retention => self.clm_retention,
        })
    }

    /// Power of one high-speed IO controller + PHY in the given link state.
    #[must_use]
    pub fn io_power(&self, kind: IoKind, state: LinkPowerState) -> Watts {
        let l0 = match kind {
            IoKind::Pcie | IoKind::Dmi => self.pcie_l0,
            IoKind::Upi => self.upi_l0,
        };
        Watts(match state {
            LinkPowerState::L0 => l0,
            LinkPowerState::L0s => self.pcie_l0s,
            LinkPowerState::L0p => self.upi_l0p,
            LinkPowerState::L1 => self.link_l1,
            LinkPowerState::Nda => 0.0,
        })
    }

    /// SoC-side power of one memory controller for the given DRAM mode.
    #[must_use]
    pub fn mc_power(&self, mode: DramPowerMode) -> Watts {
        Watts(match mode {
            DramPowerMode::Active => self.mc_active,
            DramPowerMode::ActivePowerDown | DramPowerMode::PrechargePowerDown => self.mc_cke_off,
            DramPowerMode::SelfRefresh => self.mc_self_refresh,
        })
    }

    /// DRAM device power for the given mode. `utilization` (0–1) scales the
    /// activity-proportional component and only applies in the active mode.
    #[must_use]
    pub fn dram_power(&self, mode: DramPowerMode, utilization: f64) -> Watts {
        let u = utilization.clamp(0.0, 1.0);
        Watts(match mode {
            DramPowerMode::Active => self.dram_idle + self.dram_active_extra * u,
            DramPowerMode::ActivePowerDown | DramPowerMode::PrechargePowerDown => self.dram_cke_off,
            DramPowerMode::SelfRefresh => self.dram_self_refresh,
        })
    }

    /// Power of one uncore PLL in the given state.
    #[must_use]
    pub fn pll_power(&self, state: PllState) -> Watts {
        Watts(match state {
            PllState::Locked | PllState::Relocking => self.pll_locked,
            PllState::Off => 0.0,
        })
    }

    /// Computes the instantaneous power breakdown of a socket by walking its
    /// component states. `memory_utilization` (0–1) scales the DRAM activity
    /// component (only meaningful when at least one core is active).
    #[must_use]
    pub fn snapshot(&self, soc: &SkxSoc, memory_utilization: f64) -> PowerBreakdown {
        let cores: Watts = soc
            .cores()
            .iter()
            .map(|c| self.core_power(c.cstate()))
            .sum();
        let clm = self.clm_power(soc.clm().state());

        let links: Watts = soc
            .ios()
            .iter()
            .map(|c| self.io_power(c.kind(), c.state()))
            .sum();
        let mcs: Watts = soc.memory().iter().map(|m| self.mc_power(m.mode())).sum();

        // DRAM device power follows the deepest common mode of the
        // controllers (they transition together in the package flows); mixed
        // states are averaged.
        let dram: Watts = soc
            .memory()
            .iter()
            .map(|m| self.dram_power(m.mode(), memory_utilization))
            .sum::<Watts>()
            / soc.memory().len().max(1) as f64;

        let plls: Watts = soc
            .plls()
            .uncore_plls()
            .map(|p| self.pll_power(p.state()))
            .sum();

        PowerBreakdown {
            cores,
            clm,
            io: links + mcs,
            plls,
            uncore_misc: Watts(self.north_cap_base),
            dram,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::skx_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_sim::SimTime;
    use apc_soc::core::CoreId;

    const EPS: f64 = 0.35; // calibration tolerance in watts

    fn model() -> PowerModel {
        PowerModel::skx_calibrated()
    }

    #[test]
    fn pc0idle_soc_power_is_44w() {
        let m = model();
        let mut soc = SkxSoc::xeon_silver_4114();
        soc.force_all_cores(SimTime::ZERO, CoreCState::CC1);
        let b = m.snapshot(&soc, 0.0);
        assert!(
            (b.soc_total().as_f64() - 44.0).abs() < EPS,
            "SoC idle power {}",
            b.soc_total()
        );
        assert!((b.dram.as_f64() - 5.5).abs() < EPS, "DRAM {}", b.dram);
        assert!(
            b.uncore_and_dram_fraction() > 0.65,
            "uncore+DRAM fraction {}",
            b.uncore_and_dram_fraction()
        );
    }

    #[test]
    fn pc0_full_load_soc_power_is_85w() {
        let m = model();
        let soc = SkxSoc::xeon_silver_4114(); // all cores CC0 by default
        let b = m.snapshot(&soc, 1.0);
        assert!(
            (b.soc_total().as_f64() - 85.0).abs() < EPS,
            "SoC loaded power {}",
            b.soc_total()
        );
        assert!((b.dram.as_f64() - 7.0).abs() < EPS, "DRAM {}", b.dram);
    }

    #[test]
    fn cores_diff_between_cc1_and_cc6_is_12w() {
        let m = model();
        let diff = 10.0 * (m.core_cc1 - m.core_cc6);
        assert!((diff - 12.1).abs() < 0.1, "Pcores_diff {diff}");
    }

    #[test]
    fn pll_diff_is_56mw() {
        let m = model();
        let soc = SkxSoc::xeon_silver_4114();
        let on: Watts = soc
            .plls()
            .uncore_plls()
            .map(|p| m.pll_power(p.state()))
            .sum();
        assert!((on.as_f64() - 0.056).abs() < 1e-9);
        assert_eq!(m.pll_power(PllState::Off), Watts::ZERO);
    }

    #[test]
    fn io_shallow_vs_deep_diff_is_3_5w() {
        let m = model();
        // Shallow: 3 PCIe + 1 DMI in L0s, 2 UPI in L0p, 2 MCs in CKE-off.
        let shallow = 4.0 * m.pcie_l0s + 2.0 * m.upi_l0p + 2.0 * m.mc_cke_off;
        // Deep: all 6 links in L1, 2 MCs in self-refresh.
        let deep = 6.0 * m.link_l1 + 2.0 * m.mc_self_refresh;
        assert!(
            ((shallow - deep) - 3.5).abs() < 0.1,
            "PIOs_diff {}",
            shallow - deep
        );
    }

    #[test]
    fn dram_diff_is_1_1w() {
        let m = model();
        let diff = m.dram_cke_off - m.dram_self_refresh;
        assert!((diff - 1.1).abs() < 0.05, "Pdram_diff {diff}");
    }

    #[test]
    fn per_state_power_is_monotonic() {
        let m = model();
        assert!(m.core_power(CoreCState::CC0) > m.core_power(CoreCState::CC1));
        assert!(m.core_power(CoreCState::CC1) > m.core_power(CoreCState::CC1E));
        assert!(m.core_power(CoreCState::CC1E) > m.core_power(CoreCState::CC6));
        assert!(m.clm_power(ClmState::Operational) > m.clm_power(ClmState::ClockGated));
        assert!(m.clm_power(ClmState::ClockGated) > m.clm_power(ClmState::Retention));
        assert!(
            m.io_power(IoKind::Pcie, LinkPowerState::L0)
                > m.io_power(IoKind::Pcie, LinkPowerState::L0s)
        );
        assert!(
            m.io_power(IoKind::Upi, LinkPowerState::L0)
                > m.io_power(IoKind::Upi, LinkPowerState::L0p)
        );
        assert!(
            m.io_power(IoKind::Pcie, LinkPowerState::L0s)
                > m.io_power(IoKind::Pcie, LinkPowerState::L1)
        );
        assert!(m.mc_power(DramPowerMode::Active) > m.mc_power(DramPowerMode::PrechargePowerDown));
        assert!(
            m.dram_power(DramPowerMode::Active, 0.0)
                > m.dram_power(DramPowerMode::PrechargePowerDown, 0.0)
        );
        assert!(
            m.dram_power(DramPowerMode::PrechargePowerDown, 0.0)
                > m.dram_power(DramPowerMode::SelfRefresh, 0.0)
        );
    }

    #[test]
    fn l0s_saves_about_half_of_l0() {
        let m = model();
        let saving = 1.0 - m.pcie_l0s / m.pcie_l0;
        assert!((0.45..=0.65).contains(&saving), "L0s saving {saving}");
        let upi_saving = 1.0 - m.upi_l0p / m.upi_l0;
        assert!(
            (0.20..=0.40).contains(&upi_saving),
            "L0p saving {upi_saving}"
        );
    }

    #[test]
    fn dram_utilization_scales_only_active_mode() {
        let m = model();
        let idle = m.dram_power(DramPowerMode::Active, 0.0);
        let loaded = m.dram_power(DramPowerMode::Active, 1.0);
        assert!((loaded.as_f64() - idle.as_f64() - 1.5).abs() < 1e-9);
        assert_eq!(
            m.dram_power(DramPowerMode::SelfRefresh, 1.0),
            m.dram_power(DramPowerMode::SelfRefresh, 0.0)
        );
        // Clamp out-of-range utilization.
        assert_eq!(m.dram_power(DramPowerMode::Active, 2.0), loaded);
    }

    #[test]
    fn breakdown_display_and_partial_activity() {
        let m = model();
        let mut soc = SkxSoc::xeon_silver_4114();
        // 3 active cores, 7 in CC1.
        soc.force_all_cores(SimTime::ZERO, CoreCState::CC1);
        for i in 0..3 {
            soc.cores_mut()
                .core_mut(CoreId(i))
                .force_state(SimTime::ZERO, CoreCState::CC0);
        }
        let b = m.snapshot(&soc, 0.3);
        let expected_cores = 3.0 * m.core_cc0 + 7.0 * m.core_cc1;
        assert!((b.cores.as_f64() - expected_cores).abs() < 1e-9);
        assert!(b.soc_total() > Watts(44.0));
        assert!(b.soc_total() < Watts(85.0));
        assert!(b.to_string().contains("SoC"));
    }
}
