//! # `apc-power` — per-domain power model, energy accounting and RAPL facade
//!
//! This crate turns component states from [`apc_soc`] into watts and joules:
//!
//! * [`units`] — [`units::Watts`] / [`units::Joules`] newtypes;
//! * [`model`] — the calibrated per-domain [`model::PowerModel`] and the
//!   [`model::PowerBreakdown`] snapshot;
//! * [`budget`] — closed-form package-state power budgets reproducing
//!   Table 1 and the Sec. 5.4 component deltas;
//! * [`energy`] — piecewise-constant energy integration over a simulated
//!   timeline;
//! * [`rapl`] — a RAPL-like counter interface so experiments can be written
//!   the way the paper's measurement methodology describes.
//!
//! # Example
//!
//! ```
//! use apc_power::budget::PackageStatePower;
//! use apc_soc::cstate::PackageCState;
//!
//! let budget = PackageStatePower::skx_reference();
//! let pc1a = budget.state_power(PackageCState::PC1A);
//! let idle = budget.state_power(PackageCState::PC0Idle);
//!
//! // The paper's headline idle-power claim: PC1A saves ~41 % vs. PC0idle.
//! let saving = 1.0 - pc1a.total().as_f64() / idle.total().as_f64();
//! assert!((saving - 0.41).abs() < 0.02);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod budget;
pub mod energy;
pub mod model;
pub mod rapl;
pub mod units;

pub use budget::{PackageStatePower, StatePower};
pub use energy::{EnergyBreakdown, EnergyMeter};
pub use model::{PowerBreakdown, PowerModel};
pub use rapl::{RaplDomain, RaplInterface};
pub use units::{Joules, Watts};
