//! RAPL-like energy counter facade.
//!
//! The paper measures power through Intel's Running Average Power Limit
//! (RAPL) interface: monotonically increasing energy counters for the
//! `Package` and `DRAM` domains, exposed in fixed energy units and wrapping
//! at 32 bits. This module reproduces that interface on top of the
//! simulator's [`EnergyMeter`](crate::energy::EnergyMeter) output so that the
//! experiment harnesses can be written the same way the paper's measurement
//! scripts were (sample counter, wait, sample again, divide by time).

use std::fmt;

use apc_sim::{SimDuration, SimTime};

use crate::units::{Joules, Watts};

/// RAPL measurement domains modelled by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaplDomain {
    /// The processor package (SoC) domain.
    Package,
    /// The DRAM domain.
    Dram,
}

impl fmt::Display for RaplDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaplDomain::Package => f.write_str("RAPL.Package"),
            RaplDomain::Dram => f.write_str("RAPL.DRAM"),
        }
    }
}

/// A single RAPL energy-status counter.
///
/// Follows the hardware convention: energy is reported in fixed units
/// (default 61.0 µJ — the 2⁻¹⁴ J unit most server parts use) in a 32-bit
/// register that wraps around.
#[derive(Debug, Clone)]
pub struct RaplCounter {
    domain: RaplDomain,
    energy_unit_uj: f64,
    /// Fractional energy not yet exposed in counter units.
    residual_uj: f64,
    raw: u32,
}

impl RaplCounter {
    /// The default energy unit: 2⁻¹⁴ J ≈ 61.0 µJ.
    pub const DEFAULT_ENERGY_UNIT_UJ: f64 = 61.03515625;

    /// Creates a counter for the given domain with the default energy unit.
    #[must_use]
    pub fn new(domain: RaplDomain) -> Self {
        RaplCounter {
            domain,
            energy_unit_uj: Self::DEFAULT_ENERGY_UNIT_UJ,
            residual_uj: 0.0,
            raw: 0,
        }
    }

    /// The counter's domain.
    #[must_use]
    pub fn domain(&self) -> RaplDomain {
        self.domain
    }

    /// The energy unit in microjoules.
    #[must_use]
    pub fn energy_unit_uj(&self) -> f64 {
        self.energy_unit_uj
    }

    /// Adds energy to the counter (called by the simulation as it integrates
    /// power). Negative or non-finite energy is ignored.
    pub fn add_energy(&mut self, energy: Joules) {
        let uj = energy.as_microjoules();
        if !uj.is_finite() || uj <= 0.0 {
            return;
        }
        let total = self.residual_uj + uj;
        let ticks = (total / self.energy_unit_uj).floor();
        self.residual_uj = total - ticks * self.energy_unit_uj;
        self.raw = self.raw.wrapping_add(ticks as u32);
    }

    /// Reads the raw 32-bit energy-status register.
    #[must_use]
    pub fn read_raw(&self) -> u32 {
        self.raw
    }

    /// Reads the counter in joules (raw × unit).
    #[must_use]
    pub fn read_joules(&self) -> Joules {
        Joules(f64::from(self.raw) * self.energy_unit_uj * 1e-6)
    }
}

/// A two-sample RAPL measurement: energy delta over a time window, as the
/// paper's methodology uses to derive power numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaplSample {
    /// Raw counter value at the sample instant.
    pub raw: u32,
    /// Sample timestamp.
    pub at: SimTime,
}

impl RaplSample {
    /// Average power between two samples of the same counter, handling
    /// counter wrap-around. Returns zero power for a non-positive window.
    #[must_use]
    pub fn average_power_since(&self, earlier: &RaplSample, energy_unit_uj: f64) -> Watts {
        let window: SimDuration = self.at - earlier.at;
        if window.is_zero() {
            return Watts::ZERO;
        }
        let ticks = self.raw.wrapping_sub(earlier.raw);
        let joules = f64::from(ticks) * energy_unit_uj * 1e-6;
        Joules(joules).average_power(window)
    }
}

/// The pair of counters the reproduction exposes (`RAPL.Package` and
/// `RAPL.DRAM`), with sampling helpers.
#[derive(Debug, Clone)]
pub struct RaplInterface {
    package: RaplCounter,
    dram: RaplCounter,
}

impl RaplInterface {
    /// Creates the interface with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        RaplInterface {
            package: RaplCounter::new(RaplDomain::Package),
            dram: RaplCounter::new(RaplDomain::Dram),
        }
    }

    /// Adds energy to both domains.
    pub fn add(&mut self, package: Joules, dram: Joules) {
        self.package.add_energy(package);
        self.dram.add_energy(dram);
    }

    /// Access to a domain counter.
    #[must_use]
    pub fn counter(&self, domain: RaplDomain) -> &RaplCounter {
        match domain {
            RaplDomain::Package => &self.package,
            RaplDomain::Dram => &self.dram,
        }
    }

    /// Samples a domain counter at `now`.
    #[must_use]
    pub fn sample(&self, domain: RaplDomain, now: SimTime) -> RaplSample {
        RaplSample {
            raw: self.counter(domain).read_raw(),
            at: now,
        }
    }
}

impl Default for RaplInterface {
    fn default() -> Self {
        RaplInterface::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_in_units() {
        let mut c = RaplCounter::new(RaplDomain::Package);
        // 1 J = ~16384 units of 61.035 µJ.
        c.add_energy(Joules(1.0));
        let raw = c.read_raw();
        assert!((f64::from(raw) - 16384.0).abs() <= 1.0, "raw {raw}");
        assert!((c.read_joules().as_f64() - 1.0).abs() < 1e-3);
        assert_eq!(c.domain(), RaplDomain::Package);
    }

    #[test]
    fn residual_energy_is_not_lost() {
        let mut c = RaplCounter::new(RaplDomain::Dram);
        // Add energy in slices much smaller than one unit.
        for _ in 0..1000 {
            c.add_energy(Joules(1e-6)); // 1 µJ
        }
        // 1000 µJ / 61.035 µJ ≈ 16 units.
        assert!(
            c.read_raw() >= 15 && c.read_raw() <= 17,
            "raw {}",
            c.read_raw()
        );
        // Invalid inputs are ignored.
        c.add_energy(Joules(-5.0));
        c.add_energy(Joules(f64::NAN));
    }

    #[test]
    fn sample_pair_yields_average_power() {
        let mut iface = RaplInterface::new();
        let s0 = iface.sample(RaplDomain::Package, SimTime::ZERO);
        // 44 W for 100 ms = 4.4 J.
        iface.add(Joules(4.4), Joules(0.55));
        let s1 = iface.sample(RaplDomain::Package, SimTime::from_millis(100));
        let p = s1.average_power_since(&s0, RaplCounter::DEFAULT_ENERGY_UNIT_UJ);
        assert!((p.as_f64() - 44.0).abs() < 0.1, "power {p}");

        let d0 = RaplSample {
            raw: 0,
            at: SimTime::ZERO,
        };
        let d1 = iface.sample(RaplDomain::Dram, SimTime::from_millis(100));
        let dp = d1.average_power_since(&d0, RaplCounter::DEFAULT_ENERGY_UNIT_UJ);
        assert!((dp.as_f64() - 5.5).abs() < 0.1, "dram power {dp}");
    }

    #[test]
    fn wraparound_is_handled() {
        let near_wrap = RaplSample {
            raw: u32::MAX - 10,
            at: SimTime::ZERO,
        };
        let after_wrap = RaplSample {
            raw: 5,
            at: SimTime::from_secs(1),
        };
        let p = after_wrap.average_power_since(&near_wrap, 61.0);
        // 16 ticks * 61 µJ over 1 s ≈ 976 µW.
        assert!((p.as_f64() - 16.0 * 61.0e-6).abs() < 1e-9);
    }

    #[test]
    fn zero_window_power_is_zero() {
        let a = RaplSample {
            raw: 0,
            at: SimTime::ZERO,
        };
        let b = RaplSample {
            raw: 100,
            at: SimTime::ZERO,
        };
        assert_eq!(b.average_power_since(&a, 61.0), Watts::ZERO);
    }

    #[test]
    fn domain_display() {
        assert_eq!(RaplDomain::Package.to_string(), "RAPL.Package");
        assert_eq!(RaplDomain::Dram.to_string(), "RAPL.DRAM");
    }
}
