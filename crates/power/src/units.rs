//! Power and energy units.
//!
//! Thin newtypes keep watts and joules from being mixed up in the power
//! model and make intent explicit at API boundaries.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use apc_sim::SimDuration;

/// Electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// The raw value in watts.
    #[must_use]
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// The value in milliwatts.
    #[must_use]
    pub fn as_milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Energy dissipated when this power is held for `d`.
    #[must_use]
    pub fn over(self, d: SimDuration) -> Joules {
        Joules(self.0 * d.as_secs_f64())
    }

    /// `true` when the value is finite and non-negative.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// The raw value in joules.
    #[must_use]
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// The value in microjoules (RAPL's native granularity).
    #[must_use]
    pub fn as_microjoules(self) -> f64 {
        self.0 * 1e6
    }

    /// The average power if this energy was dissipated over `d`.
    /// Returns zero power for a zero-length window.
    #[must_use]
    pub fn average_power(self, d: SimDuration) -> Watts {
        let secs = d.as_secs_f64();
        if secs <= 0.0 {
            Watts::ZERO
        } else {
            Watts(self.0 / secs)
        }
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}
impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}
impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}
impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}
impl Div<f64> for Watts {
    type Output = Watts;
    fn div(self, rhs: f64) -> Watts {
        Watts(self.0 / rhs)
    }
}
impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, |a, b| a + b)
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}
impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}
impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}
impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() < 1.0 {
            write!(f, "{:.1}mW", self.0 * 1e3)
        } else {
            write!(f, "{:.2}W", self.0)
        }
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}J", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_arithmetic() {
        let a = Watts(2.0) + Watts(3.0);
        assert_eq!(a, Watts(5.0));
        assert_eq!(a - Watts(1.0), Watts(4.0));
        assert_eq!(a * 2.0, Watts(10.0));
        assert_eq!(a / 5.0, Watts(1.0));
        let sum: Watts = [Watts(1.0), Watts(2.5)].into_iter().sum();
        assert_eq!(sum, Watts(3.5));
        assert!(Watts(1.0).is_valid());
        assert!(!Watts(f64::NAN).is_valid());
        assert!(!Watts(-1.0).is_valid());
    }

    #[test]
    fn energy_integration_and_average() {
        let e = Watts(10.0).over(SimDuration::from_millis(100));
        assert!((e.as_f64() - 1.0).abs() < 1e-12);
        let p = e.average_power(SimDuration::from_millis(100));
        assert!((p.as_f64() - 10.0).abs() < 1e-9);
        assert_eq!(Joules(5.0).average_power(SimDuration::ZERO), Watts::ZERO);
        assert!((Joules(1.0).as_microjoules() - 1e6).abs() < 1e-6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Watts(0.056).to_string(), "56.0mW");
        assert_eq!(Watts(27.5).to_string(), "27.50W");
        assert_eq!(Joules(1.2345).to_string(), "1.234J");
        assert!((Watts(0.5).as_milliwatts() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn joules_arithmetic() {
        let e = Joules(1.0) + Joules(2.0);
        assert_eq!(e, Joules(3.0));
        assert_eq!(e - Joules(0.5), Joules(2.5));
        let sum: Joules = [Joules(1.0), Joules(2.0)].into_iter().sum();
        assert_eq!(sum, Joules(3.0));
    }
}
