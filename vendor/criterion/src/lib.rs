//! Offline stand-in for the crates.io `criterion` benchmark harness.
//!
//! The container this repository builds in has no network access to a cargo
//! registry, so the real `criterion` crate cannot be fetched. This shim
//! implements the small API subset the `apc-bench` targets use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple wall-clock measurement loop
//! that reports the median per-iteration time.
//!
//! It is intentionally much simpler than the real crate (no statistical
//! outlier analysis, no HTML reports) but produces stable, comparable
//! numbers for before/after micro-benchmarking.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function (re-export of
/// [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-benchmark measurement driver handed to the closure passed to
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_size,
        }
    }

    /// Measures `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50 ms of wall time or 3 iterations, whichever
        // comes later, so caches/branch predictors settle.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 10_000 {
                break;
            }
        }
        // Choose an inner batch size so one sample takes >= ~1 ms.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return Duration::ZERO;
        }
        s.sort();
        s[s.len() / 2]
    }
}

fn report(name: &str, b: &Bencher) {
    let med = b.median();
    let ns = med.as_nanos();
    let human = if ns >= 1_000_000_000 {
        format!("{:.3} s", med.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    };
    println!(
        "{name:<48} time: [{human}/iter, median of {}]",
        b.samples.len()
    );
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single benchmark and prints its median per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
